// ispmonitor reproduces the paper's §5 deployment story at example scale: a
// network operator monitors a fleet of cloud-gaming sessions, classifies
// each session's context in real time, and uses the contexts to tell real
// network problems apart from low-demand gameplay.
//
// The troubleshooting view streams continuously: sessions the objective QoE
// module would flag as degraded print the moment they are measured
// (fleet.RunStream's incremental emission), split into those the context
// calibration clears and those that remain bad. At the same time every
// record feeds a per-subscriber rollup window (fleet.RollupSink), and the
// run closes with the operator dashboard: per-subscriber session counts,
// stage minutes, throughput, and the objective-vs-effective QoE mix.
//
// The monitor is restartable: it checkpoints the rollup mid-day (an atomic
// write-temp-rename), restores it into a fresh rollup as a restarted
// process would, replays the rest of the day, and verifies the resumed
// window is byte-identical to an uninterrupted one — the §5 requirement
// that a monitor restart must not lose the day's Fig 11–13 aggregations.
//
// The deployment also scales out: the run closes by splitting the
// subscriber population across two monitoring taps, checkpointing each tap
// independently, and folding the checkpoints into one fleet view with
// Rollup.Merge (what the rollupmerge CLI does over checkpoint files) —
// verified byte-identical to the single tap that saw everything, sketched
// percentiles included.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gamelens"
	"gamelens/internal/fleet"
	"gamelens/internal/qoe"
	"gamelens/internal/trace"
)

const (
	sessions    = 120
	subscribers = 24              // several sessions per subscriber household
	stagger     = 7 * time.Minute // session start spacing on the simulated day
)

// dayStart anchors the simulated packet-time day.
var dayStart = time.Date(2026, 7, 30, 6, 0, 0, 0, time.UTC)

func main() {
	log.SetFlags(0)

	fmt.Println("training deployment models...")
	models, err := gamelens.TrainModels(21, gamelens.TrainOptions{
		SessionsPerTitle: 5,
		SessionLength:    20 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("monitoring a day of sessions on the access network (%d workers)...\n", workers)
	deployment := fleet.New(fleet.Config{
		Sessions:      sessions,
		LongTailFrac:  -1, // the paper's Table 1 population mix
		SessionLength: 15 * time.Minute,
		ImpairedFrac:  0.15,
		Seed:          99,
	}, models.Title, models.Stage)

	// The live window: the whole simulated day, sliced into hour buckets.
	live := gamelens.NewRollup(gamelens.RollupConfig{Window: 24 * time.Hour, Buckets: 24})
	rollupSink := fleet.RollupSink(live, dayStart, stagger, subscribers)

	// RunStream measures sessions on all cores and emits each record the
	// moment its session is measured — the operator's console updates
	// continuously instead of dumping everything at end of run. Emission
	// is serialized by fleet, so the counters below need no locking; the
	// returned slice is still identical to the sequential deployment.Run
	// (verified by fleet's tests).
	var measured, flagged, cleared, confirmed, impairedCaught int
	fmt.Println("\nsessions flagged by the objective QoE module (live):")
	records := deployment.RunStream(workers, func(r *fleet.SessionRecord) {
		rollupSink(r)
		measured++
		if r.Objective == qoe.Good {
			return
		}
		flagged++
		name := "unknown title"
		if r.TitleResult.Known {
			name = r.TitleResult.Title.String()
		} else if r.PatternKnown {
			name = "[" + r.PatternResult.Pattern.String() + "]"
		}
		if r.Effective == qoe.Good {
			cleared++
			fmt.Printf("  [%3d/%d]  %-22s obj=%-6v eff=%-6v -> cleared (context: low demand)\n",
				measured, sessions, name, r.Objective, r.Effective)
			return
		}
		confirmed++
		cause := "congestion/starvation"
		if r.Net.RTT > 80*time.Millisecond {
			cause = fmt.Sprintf("high latency (%v RTT)", r.Net.RTT)
		} else if r.Net.LossRate > 0.02 {
			cause = fmt.Sprintf("packet loss (%.1f%%)", r.Net.LossRate*100)
		} else if r.Net.BandwidthMbps > 0 {
			cause = fmt.Sprintf("bandwidth cap (%.0f Mbps)", r.Net.BandwidthMbps)
		}
		fmt.Printf("  [%3d/%d]  %-22s obj=%-6v eff=%-6v -> TROUBLESHOOT: %s\n",
			measured, sessions, name, r.Objective, r.Effective, cause)
		if r.Net.Impaired(10) {
			impairedCaught++
		}
	})

	fmt.Printf("\nsummary: %d sessions, %d flagged objectively, %d cleared by context, %d confirmed degraded\n",
		len(records), flagged, cleared, confirmed)
	if confirmed > 0 {
		fmt.Printf("of the confirmed, %d are on genuinely impaired paths (precision %.0f%%)\n",
			impairedCaught, float64(impairedCaught)/float64(confirmed)*100)
	}
	v := fleet.Validate(records)
	fmt.Printf("field validation vs server logs: title accuracy %.1f%% on %d confident labels\n",
		v.TitleAccuracy()*100, v.KnownResults)

	printDashboard(live)
	demonstrateRestart(records)
	demonstrateFleetMerge(records)
}

// printDashboard renders the per-subscriber operator view of the window.
func printDashboard(ru *gamelens.Rollup) {
	aggs := ru.Subscribers()
	total := ru.Total()
	fmt.Printf("\nper-subscriber dashboard (window clock %v, %d subscribers, %d sessions):\n",
		ru.Clock().Format("15:04:05"), len(aggs), total.Sessions)
	fmt.Println("  subscriber       sessions   active/passive/idle min      Mbps p50/p90/p99    good obj->eff  QoE p50")
	for _, a := range aggs {
		w := a.Window
		top := ""
		var topN int64
		for name, n := range w.Titles {
			if n > topN || (n == topN && name < top) {
				top, topN = name, n
			}
		}
		if top == "" {
			top = "(long tail)"
		}
		mbps := w.ThroughputPercentiles()
		fmt.Printf("  %-15v   %3d      %6.1f / %6.1f / %6.1f   %5.1f/%5.1f/%5.1f    %3.0f%% -> %3.0f%%    %.2f   %s\n",
			a.Subscriber, w.Sessions,
			w.StageMinutes[trace.StageActive], w.StageMinutes[trace.StagePassive],
			w.StageMinutes[trace.StageIdle],
			mbps.P50, mbps.P90, mbps.P99,
			w.GoodShare(false)*100, w.GoodShare(true)*100,
			w.QoEProxyQuantile(0.5), top)
	}
}

// demonstrateRestart replays the monitor-restart scenario on the
// population-ordered record log: half the day is ingested and checkpointed
// to disk, a fresh rollup restores the checkpoint (as a restarted process
// would), the rest of the day is ingested, and the resumed window must
// checkpoint byte-identically to an uninterrupted run over the same log.
func demonstrateRestart(records []*fleet.SessionRecord) {
	ckpt := filepath.Join(os.TempDir(), "ispmonitor-rollup.ckpt")
	defer os.Remove(ckpt)

	newRollup := func() *gamelens.Rollup {
		return gamelens.NewRollup(gamelens.RollupConfig{Window: 24 * time.Hour, Buckets: 24})
	}
	uninterrupted := newRollup()
	wholeDay := fleet.RollupSink(uninterrupted, dayStart, stagger, subscribers)
	for _, r := range records {
		wholeDay(r)
	}

	half := newRollup()
	firstHalf := fleet.RollupSink(half, dayStart, stagger, subscribers)
	mid := len(records) / 2
	for _, r := range records[:mid] {
		firstHalf(r)
	}
	if err := half.SaveFile(ckpt); err != nil {
		log.Fatalf("checkpoint: %v", err)
	}
	fmt.Printf("\nmonitor restart at session %d/%d: checkpointed %s, restoring...\n",
		mid, len(records), ckpt)

	resumed, err := gamelens.LoadRollup(ckpt)
	if err != nil {
		log.Fatalf("restore: %v", err)
	}
	secondHalf := fleet.RollupSink(resumed, dayStart, stagger, subscribers)
	for _, r := range records[mid:] {
		secondHalf(r)
	}

	var a, b bytes.Buffer
	if err := uninterrupted.Snapshot(&a); err != nil {
		log.Fatal(err)
	}
	if err := resumed.Snapshot(&b); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		fmt.Printf("restart-resume verified: resumed window byte-identical to the uninterrupted run (%d checkpoint bytes)\n", b.Len())
	} else {
		log.Fatal("restart-resume DIVERGED: resumed window differs from the uninterrupted run")
	}
}

// demonstrateFleetMerge replays the multi-monitor deployment: the
// subscriber population splits across two taps (even-index households on
// tap A, odd on tap B), each tap keeps its own rollup and checkpoints
// independently, and the checkpoints fold into one fleet view — the exact
// work of `rollupmerge -o fleet.ckpt tapA.ckpt tapB.ckpt` — which must be
// byte-identical to the single tap that saw everything.
func demonstrateFleetMerge(records []*fleet.SessionRecord) {
	dir := os.TempDir()
	pathA := filepath.Join(dir, "ispmonitor-tapA.ckpt")
	pathB := filepath.Join(dir, "ispmonitor-tapB.ckpt")
	defer os.Remove(pathA)
	defer os.Remove(pathB)

	newRollup := func() *gamelens.Rollup {
		return gamelens.NewRollup(gamelens.RollupConfig{Window: 24 * time.Hour, Buckets: 24})
	}
	single, tapA, tapB := newRollup(), newRollup(), newRollup()
	wholeSink := fleet.RollupSink(single, dayStart, stagger, subscribers)
	sinkA := fleet.RollupSink(tapA, dayStart, stagger, subscribers)
	sinkB := fleet.RollupSink(tapB, dayStart, stagger, subscribers)
	for _, r := range records {
		wholeSink(r)
		if (r.Index%subscribers)%2 == 0 {
			sinkA(r)
		} else {
			sinkB(r)
		}
	}
	if err := tapA.SaveFile(pathA); err != nil {
		log.Fatalf("tap A checkpoint: %v", err)
	}
	if err := tapB.SaveFile(pathB); err != nil {
		log.Fatalf("tap B checkpoint: %v", err)
	}
	stA, stB := tapA.Stats(), tapB.Stats()
	fmt.Printf("\nfleet merge: tap A (%d subscribers, %d sessions) + tap B (%d subscribers, %d sessions)\n",
		stA.Subscribers, stA.Ingested, stB.Subscribers, stB.Ingested)

	fleetView, err := gamelens.LoadRollup(pathA)
	if err != nil {
		log.Fatalf("restore tap A: %v", err)
	}
	tapBRestored, err := gamelens.LoadRollup(pathB)
	if err != nil {
		log.Fatalf("restore tap B: %v", err)
	}
	if err := fleetView.Merge(tapBRestored); err != nil {
		log.Fatalf("merge: %v", err)
	}

	var want, got bytes.Buffer
	if err := single.Snapshot(&want); err != nil {
		log.Fatal(err)
	}
	if err := fleetView.Snapshot(&got); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		log.Fatal("fleet merge DIVERGED: merged taps differ from the single-tap run")
	}
	total := fleetView.Total()
	mbps := total.ThroughputPercentiles()
	fmt.Printf("fleet merge verified: merged view byte-identical to the single tap (%d subscribers, %d sessions; fleet Mbps p50/p90/p99 %.1f/%.1f/%.1f, QoE proxy p50 %.2f)\n",
		fleetView.Stats().Subscribers, total.Sessions, mbps.P50, mbps.P90, mbps.P99,
		total.QoEProxyQuantile(0.5))
}
