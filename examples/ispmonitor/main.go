// ispmonitor reproduces the paper's §5 deployment story at example scale: a
// network operator monitors a fleet of cloud-gaming sessions, classifies
// each session's context in real time, and uses the contexts to tell real
// network problems apart from low-demand gameplay.
//
// It prints the operator's troubleshooting view continuously: sessions the
// objective QoE module would flag as degraded stream onto the console the
// moment they are measured (fleet.RunStream's incremental emission), split
// into those the context calibration clears (low-demand titles,
// passive/idle periods) and those that remain bad — the genuinely
// network-impaired ones worth an engineer's time.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"gamelens"
	"gamelens/internal/fleet"
	"gamelens/internal/qoe"
)

func main() {
	log.SetFlags(0)

	fmt.Println("training deployment models...")
	models, err := gamelens.TrainModels(21, gamelens.TrainOptions{
		SessionsPerTitle: 5,
		SessionLength:    20 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	const sessions = 120
	workers := runtime.GOMAXPROCS(0)
	fmt.Printf("monitoring a day of sessions on the access network (%d workers)...\n", workers)
	deployment := fleet.New(fleet.Config{
		Sessions:      sessions,
		SessionLength: 15 * time.Minute,
		ImpairedFrac:  0.15,
		Seed:          99,
	}, models.Title, models.Stage)

	// RunStream measures sessions on all cores and emits each record the
	// moment its session is measured — the operator's console updates
	// continuously instead of dumping everything at end of run. Emission
	// is serialized by fleet, so the counters below need no locking; the
	// returned slice is still identical to the sequential deployment.Run
	// (verified by fleet's tests).
	var measured, flagged, cleared, confirmed, impairedCaught int
	fmt.Println("\nsessions flagged by the objective QoE module (live):")
	records := deployment.RunStream(workers, func(r *fleet.SessionRecord) {
		measured++
		if r.Objective == qoe.Good {
			return
		}
		flagged++
		name := "unknown title"
		if r.TitleResult.Known {
			name = r.TitleResult.Title.String()
		} else if r.PatternKnown {
			name = "[" + r.PatternResult.Pattern.String() + "]"
		}
		if r.Effective == qoe.Good {
			cleared++
			fmt.Printf("  [%3d/%d]  %-22s obj=%-6v eff=%-6v -> cleared (context: low demand)\n",
				measured, sessions, name, r.Objective, r.Effective)
			return
		}
		confirmed++
		cause := "congestion/starvation"
		if r.Net.RTT > 80*time.Millisecond {
			cause = fmt.Sprintf("high latency (%v RTT)", r.Net.RTT)
		} else if r.Net.LossRate > 0.02 {
			cause = fmt.Sprintf("packet loss (%.1f%%)", r.Net.LossRate*100)
		} else if r.Net.BandwidthMbps > 0 {
			cause = fmt.Sprintf("bandwidth cap (%.0f Mbps)", r.Net.BandwidthMbps)
		}
		fmt.Printf("  [%3d/%d]  %-22s obj=%-6v eff=%-6v -> TROUBLESHOOT: %s\n",
			measured, sessions, name, r.Objective, r.Effective, cause)
		if r.Net.Impaired(10) {
			impairedCaught++
		}
	})

	fmt.Printf("\nsummary: %d sessions, %d flagged objectively, %d cleared by context, %d confirmed degraded\n",
		len(records), flagged, cleared, confirmed)
	if confirmed > 0 {
		fmt.Printf("of the confirmed, %d are on genuinely impaired paths (precision %.0f%%)\n",
			impairedCaught, float64(impairedCaught)/float64(confirmed)*100)
	}
	v := fleet.Validate(records)
	fmt.Printf("field validation vs server logs: title accuracy %.1f%% on %d confident labels\n",
		v.TitleAccuracy()*100, v.KnownResults)
}
