// trainer shows the model lifecycle: build a labeled dataset from generated
// sessions (or PCAPs produced by cmd/gensessions), train the title
// classifier, evaluate it with a stratified hold-out split and per-title
// recalls, inspect attribute importance, and export the model as JSON for
// cmd/classify.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"gamelens"
	"gamelens/internal/features"
	"gamelens/internal/gamesim"
	"gamelens/internal/mlkit"
	"gamelens/internal/titleclass"
)

func main() {
	log.SetFlags(0)

	// 1. Build a labeled corpus (8 sessions per title, mixed configs).
	fmt.Println("generating labeled sessions...")
	rng := rand.New(rand.NewSource(2024))
	var sessions []*gamesim.Session
	for id := gamesim.TitleID(0); id < gamesim.NumTitles; id++ {
		for i := 0; i < 8; i++ {
			cfg := gamesim.RandomConfig(rng)
			sessions = append(sessions, gamesim.Generate(id, cfg, gamesim.LabNetwork(),
				2024+int64(id)*1000+int64(i), gamesim.Options{SessionLength: 3 * time.Minute}))
		}
	}

	// 2. Reduce to the 51 packet-group attributes and split.
	ds := titleclass.BuildDataset(sessions, 5*time.Second, time.Second, features.DefaultGroupConfig())
	train, test, err := mlkit.StratifiedSplit(ds, 0.25, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d train / %d test samples, %d attributes\n",
		train.NumSamples(), test.NumSamples(), ds.NumFeatures())

	// 3. Train the deployed model configuration (500 trees, depth 10).
	forest, err := mlkit.FitForest(train, mlkit.ForestConfig{NumTrees: 500, MaxDepth: 10, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate: overall accuracy and per-title recall (the Table 3 view).
	cm := mlkit.Evaluate(forest, test)
	fmt.Printf("hold-out accuracy: %.1f%%\n", cm.Accuracy()*100)
	for id := 0; id < int(gamesim.NumTitles); id++ {
		fmt.Printf("  %-20s recall %.1f%%  precision %.1f%%\n",
			gamesim.TitleID(id), cm.Recall(id)*100, cm.Precision(id)*100)
	}

	// 5. Attribute importance (the Fig 9 view), top ten.
	imp := mlkit.PermutationImportance(forest, test, 3, 13)
	names := features.LaunchAttrNames()
	order := make([]int, len(imp))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return imp[order[a]] > imp[order[b]] })
	fmt.Println("top attributes by permutation importance:")
	for _, i := range order[:10] {
		fmt.Printf("  %-22s %.4f\n", names[i], imp[i])
	}

	// 6. Export for cmd/classify -title-model.
	out, err := os.Create("title-model.json")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	models := &gamelens.Models{Title: titleclass.FromModel(forest, titleclass.Config{})}
	if err := gamelens.SaveTitleModel(out, models); err != nil {
		log.Fatal(err)
	}
	fmt.Println("model written to title-model.json")
}
