//go:build !race

package gamelens

// raceEnabled reports whether the test binary was built with -race; see
// race_on_test.go.
const raceEnabled = false
