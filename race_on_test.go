//go:build race

package gamelens

// raceEnabled reports whether the test binary was built with -race. The
// facade tests train full models repeatedly; under the detector's ~10-50x
// instrumentation that alone brushes the default per-package timeout, so
// the fixtures scale down (fewer sessions, smaller forests) exactly as the
// core and engine test suites already do. Everything is seeded, so the
// scaled run is deterministic, not flaky; the full sizes run in the plain
// pass.
const raceEnabled = true
