package gamelens

import (
	"bytes"
	"testing"
	"time"

	"gamelens/internal/gamesim"
	"gamelens/internal/mlkit"
	"gamelens/internal/stageclass"
	"gamelens/internal/titleclass"
	"gamelens/internal/trace"
)

func smallTrainOptions() TrainOptions {
	opts := TrainOptions{
		SessionsPerTitle: 5,
		SessionLength:    12 * time.Minute,
		TitleConfig:      titleclass.Config{Forest: mlkit.ForestConfig{NumTrees: 60, MaxDepth: 10}},
	}
	if raceEnabled {
		opts.SessionsPerTitle = 2
		opts.SessionLength = 6 * time.Minute
		opts.TitleConfig.Forest.NumTrees = 20
		opts.StageConfig = stageclass.Config{
			StageForest:   mlkit.ForestConfig{NumTrees: 15, MaxDepth: 10},
			PatternForest: mlkit.ForestConfig{NumTrees: 15, MaxDepth: 10},
		}
	}
	return opts
}

func TestTrainModelsAndClassify(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	models, err := TrainModels(5, smallTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := gamesim.Generate(gamesim.Fortnite,
		gamesim.ClientConfig{Resolution: gamesim.ResQHD, FPS: 60},
		gamesim.LabNetwork(), 777, gamesim.Options{SessionLength: 8 * time.Minute})
	r := models.Title.Classify(s.Launch)
	if !r.Known || r.Title != gamesim.Fortnite {
		t.Errorf("classified %v, want Fortnite", r)
	}
	tracker := models.Stage.NewTracker(s.LaunchEnd())
	for _, slot := range trace.Rebin(s.Slots, time.Second) {
		tracker.Push(slot)
	}
	if tracker.Transitions().Total() == 0 {
		t.Error("tracker saw no transitions")
	}
}

func TestTrainModelsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models twice")
	}
	opts := smallTrainOptions()
	opts.SessionsPerTitle = 2
	a, err := TrainModels(9, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainModels(9, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := gamesim.Generate(gamesim.Dota2,
		gamesim.ClientConfig{Resolution: gamesim.ResFHD, FPS: 60},
		gamesim.LabNetwork(), 13, gamesim.Options{SessionLength: 5 * time.Minute})
	ra, rb := a.Title.Classify(s.Launch), b.Title.Classify(s.Launch)
	if ra != rb {
		t.Errorf("same seed, different results: %v vs %v", ra, rb)
	}
}

func TestSaveLoadTitleModel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	models, err := TrainModels(11, smallTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTitleModel(&buf, models); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTitleModel(&buf, titleclass.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := gamesim.Generate(gamesim.Hearthstone,
		gamesim.ClientConfig{Resolution: gamesim.ResHD, FPS: 30},
		gamesim.LabNetwork(), 17, gamesim.Options{SessionLength: 5 * time.Minute})
	if a, b := models.Title.Classify(s.Launch), loaded.Classify(s.Launch); a != b {
		t.Errorf("loaded model disagrees: %v vs %v", a, b)
	}
}

func TestNewPipelineWired(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	models, err := TrainModels(15, smallTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(PipelineConfig{}, models)
	if p == nil {
		t.Fatal("nil pipeline")
	}
	if got := p.Finish(); len(got) != 0 {
		t.Errorf("fresh pipeline has %d sessions", len(got))
	}
}

// TestEngineLifecycleThroughFacade exercises the streaming deployment
// shape end to end through the public API: an Engine with a FlowTTL and a
// ReportSink over a mostly-sequential capture must stream each flow's
// report as it expires and leave nothing unreported at Finish.
func TestEngineLifecycleThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	models, err := TrainModels(27, smallTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	const flows = 4
	var sessions []*gamesim.Session
	for i := 0; i < flows; i++ {
		sessions = append(sessions, gamesim.Generate(gamesim.TitleID(i),
			gamesim.ClientConfig{Resolution: gamesim.ResFHD, FPS: 60},
			gamesim.LabNetwork(), 500+int64(i), gamesim.Options{SessionLength: 2 * time.Minute}))
	}
	st := gamesim.NewPacketStream(sessions, 45*time.Second,
		time.Date(2026, 6, 1, 11, 0, 0, 0, time.UTC), 90*time.Second)

	var streamed []*SessionReport // single-reader replay; engine serializes the sink
	eng := NewEngine(EngineConfig{
		Shards:   2,
		Sink:     func(r *SessionReport) { streamed = append(streamed, r) },
		Pipeline: PipelineConfig{FlowTTL: 20 * time.Second},
	}, models)
	if err := st.Replay(eng.HandlePacket); err != nil {
		t.Fatal(err)
	}
	reports := eng.Finish()
	if len(reports) != flows {
		t.Fatalf("%d reports, want %d", len(reports), flows)
	}
	if len(streamed) != flows {
		t.Fatalf("sink saw %d reports, want %d", len(streamed), flows)
	}
	stats := eng.Stats()
	if stats.Flows() != flows || stats.ActiveFlows+int(stats.EvictedFlows) != flows {
		t.Errorf("flow accounting off: %+v", stats)
	}
	if stats.EmittedReports != int64(flows) {
		t.Errorf("EmittedReports = %d, want %d", stats.EmittedReports, flows)
	}
}

func TestSaveLoadStageModels(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	models, err := TrainModels(19, smallTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveStageModels(&buf, models); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStageModels(&buf, models.Stage.Config())
	if err != nil {
		t.Fatal(err)
	}
	s := gamesim.Generate(gamesim.Overwatch2,
		gamesim.ClientConfig{Resolution: gamesim.ResFHD, FPS: 60},
		gamesim.LabNetwork(), 23, gamesim.Options{SessionLength: 8 * time.Minute})
	a := models.Stage.NewTracker(s.LaunchEnd())
	b := loaded.NewTracker(s.LaunchEnd())
	for _, slot := range trace.Rebin(s.Slots, time.Second) {
		ra, rb := a.Push(slot), b.Push(slot)
		if ra.Stage != rb.Stage {
			t.Fatal("loaded stage model disagrees")
		}
	}
}
