# Tier-1 gate and developer shortcuts.
#
# `make check` is the full gate: vet, build, and the whole test suite under
# the race detector (the engine and fleet exercise real concurrency, so the
# race pass is load-bearing, not ceremonial). `make test` is the quicker
# ROADMAP tier-1 (build + tests without -race) for inner-loop runs.

GO ?= go

.PHONY: check test build vet race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The engine scaling curve vs the single-threaded pipeline.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineShards' -benchtime 3x .
