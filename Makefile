# Tier-1 gate and developer shortcuts.
#
# `make check` is the full gate: formatting, vet, build, the whole test
# suite under the race detector (the engine and fleet exercise real
# concurrency, so the race pass is load-bearing, not ceremonial), the
# allocation gate (the zero-allocation steady-state pins skip under -race,
# so they get a plain-build pass of their own), and a one-iteration
# short-mode bench smoke so the lifecycle/engine benchmarks keep compiling
# and running in CI. `make test` is the quicker ROADMAP tier-1 (build +
# tests without -race) for inner-loop runs.

GO ?= go
GOFMT ?= gofmt

# The bench target pipes `go test` into benchjson; without pipefail a
# failing benchmark (including BenchmarkSteadyState's shard-equivalence
# pre-check) would be masked by the converter's zero exit.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: check test build fmt vet race bench benchsmoke ckptsmoke allocgate sinkgate mergesmoke scalegate lintgate lint faultgate storegate

check: fmt vet build race lintgate allocgate sinkgate benchsmoke ckptsmoke mergesmoke scalegate faultgate storegate

# Fail (and list the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The project-invariant analyzers (internal/analysis): borrow-escape,
# no-alloc, wall-clock, deterministic-JSON, and SPSC-affinity checks over
# every //gamelens: directive in the tree. Zero findings required — an
# unknown directive key is itself a finding. `make lint` is the inner-loop
# alias; editors can run the same suite in-place with
# `go vet -vettool=$$(which gamelensvet) ./...` after `go install
# ./cmd/gamelensvet`.
lintgate:
	$(GO) run ./cmd/gamelensvet ./...

lint: lintgate

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The steady-state allocation pins, run without -race (the race build
# allocates on paths the production build does not, so the counts are only
# meaningful plain). Every pinned path — Tracker.Push,
# StageFeatureExtractor.Push, Forest.PredictProbaInto, Rollup.Observe
# (percentile sketch insertion included), Sketch.Add/Merge — must measure
# 0 allocs/op.
allocgate:
	$(GO) test -run 'Allocs$$' -count=1 ./internal/mlkit ./internal/features ./internal/stageclass ./internal/rollup ./internal/sketch

# The report-path allocation pins, same plain-build rule as allocgate: one
# full emitter drain — shard report rings → Sink + BatchSink → sharded
# rollup fold → recycle rings — and one Rollup.ObserveBatch fold must both
# measure 0 allocs/op, so a regression that puts an allocation back on the
# per-report emission path fails CI by name rather than as a B/op drift in
# the bench trajectory.
sinkgate:
	$(GO) test -run 'TestEmitterDrainAllocs|TestRollupObserveBatchAllocs' -count=1 ./internal/engine ./internal/rollup

# The engine scaling curve vs the single-threaded pipeline, the lifecycle
# memory-bound comparison, the rollup report-stream hot path, and the
# full-path steady-state benchmark. Fixed methodology: -benchtime 3x
# -count 3, and benchjson keeps each benchmark's fastest run (min-of-N is
# the standard noise filter — the fastest run is the least
# scheduler-disturbed) plus a _meta entry recording GOMAXPROCS and the CPU
# count the numbers are conditional on. Results land in BENCH_8.json
# (benchmark → ns/op, B/op, allocs/op, custom metrics) so the perf
# trajectory is machine-readable across PRs. BenchmarkEmitterDrain (in
# internal/engine; benchjson folds the multi-package stream into one file)
# isolates the per-report emission cost — ring pop → sinks → rollup fold →
# recycle — whose reports/s and B/op track the lock-free report path.
# BenchmarkStoreSealCompact (internal/rollup/store) measures the archive's
# full ingest→seal→compact→GC cycle on a fresh directory per iteration.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineShards|BenchmarkPipelineEviction|BenchmarkRollupIngest|BenchmarkSteadyState|BenchmarkEmitterDrain|BenchmarkStoreSealCompact' -benchmem -benchtime 3x -count 3 . ./internal/engine ./internal/rollup/store | $(GO) run ./cmd/benchjson -o BENCH_8.json

# One cheap iteration of the lifecycle, rollup and steady-state benches in
# short mode: a CI smoke that the bench code compiles and its invariants
# (report counts, shard equivalence, bounded detector) hold, without
# bench-grade cost.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineEviction|BenchmarkRollupIngest|BenchmarkSteadyState' -benchtime 1x -short .

# Rollup checkpoint round-trip smoke: the snapshot→restore→snapshot
# identity and the restart-resume equivalence, standalone and fast, so a
# broken checkpoint format fails CI in seconds rather than deep in the
# race matrix.
ckptsmoke:
	$(GO) test -run 'TestCheckpoint|TestAtomic' -count=1 ./internal/rollup ./internal/persist

# Multi-monitor merge smoke, end to end: the rollupmerge CLI folds two
# per-tap checkpoint files into a fleet view byte-identical to the
# single-tap run, and the library-level merge properties (partitioned
# byte-identity, overlap semantics, clock skew, geometry refusal) hold.
mergesmoke:
	$(GO) test -run 'TestRollupMerge|TestMerge|TestCountsMerge' -count=1 ./cmd/rollupmerge ./internal/rollup

# Crash-safety gate, short mode: the deterministic fault-injection suite —
# an injected ENOSPC that the checkpointer's bounded retry absorbs, a
# crash-restore round trip that recovers the newest valid generation (and
# falls back past a torn one), and the CLI contract that a final
# checkpoint failure exits non-zero with the error named. All faults come
# from internal/faultinject plans, so a failure replays exactly.
faultgate:
	$(GO) test -run 'TestFaultGate' -count=1 -short ./internal/rollup ./internal/faultinject ./cmd/classify

# Tiered-archive gate, short mode: the seal→compact→query round trip and
# the lossless-compaction property — a day partition byte-identical to the
# merge of its constituent hours, queries over live+archive equal to the
# unbounded reference — plus shard-grouping invariance (1..8), resume round
# trips, GC watermark coverage, and the store's torn-write/ENOSPC fault
# plans (TestStoreGate* includes the store fault tests).
storegate:
	$(GO) test -run 'TestStoreGate' -count=1 -short ./internal/rollup/store

# Shard-scaling inversion gate: replaying the bench capture with
# shards=GOMAXPROCS must not fall below 0.9x the single-shard run (the
# regression class this guards: a serialized handoff making more shards
# slower). Skips itself on a single-core box, where there is no
# parallelism to gate on.
scalegate:
	SCALEGATE=1 $(GO) test -run 'TestShardScaleGate' -count=1 -v .
