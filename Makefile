# Tier-1 gate and developer shortcuts.
#
# `make check` is the full gate: formatting, vet, build, the whole test
# suite under the race detector (the engine and fleet exercise real
# concurrency, so the race pass is load-bearing, not ceremonial), and a
# one-iteration short-mode bench smoke so the lifecycle/engine benchmarks
# keep compiling and running in CI. `make test` is the quicker ROADMAP
# tier-1 (build + tests without -race) for inner-loop runs.

GO ?= go
GOFMT ?= gofmt

.PHONY: check test build fmt vet race bench benchsmoke ckptsmoke

check: fmt vet build race benchsmoke ckptsmoke

# Fail (and list the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The engine scaling curve vs the single-threaded pipeline, the lifecycle
# memory-bound comparison, and the rollup report-stream hot path.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineShards|BenchmarkPipelineEviction|BenchmarkRollupIngest' -benchtime 3x .

# One cheap iteration of the lifecycle and rollup benches in short mode: a
# CI smoke that the bench code compiles and its invariants hold, without
# bench-grade cost.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineEviction|BenchmarkRollupIngest' -benchtime 1x -short .

# Rollup checkpoint round-trip smoke: the snapshot→restore→snapshot
# identity and the restart-resume equivalence, standalone and fast, so a
# broken checkpoint format fails CI in seconds rather than deep in the
# race matrix.
ckptsmoke:
	$(GO) test -run 'TestCheckpoint|TestAtomic' -count=1 ./internal/rollup ./internal/persist
