# Tier-1 gate and developer shortcuts.
#
# `make check` is the full gate: formatting, vet, build, the whole test
# suite under the race detector (the engine and fleet exercise real
# concurrency, so the race pass is load-bearing, not ceremonial), and a
# one-iteration short-mode bench smoke so the lifecycle/engine benchmarks
# keep compiling and running in CI. `make test` is the quicker ROADMAP
# tier-1 (build + tests without -race) for inner-loop runs.

GO ?= go
GOFMT ?= gofmt

.PHONY: check test build fmt vet race bench benchsmoke

check: fmt vet build race benchsmoke

# Fail (and list the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The engine scaling curve vs the single-threaded pipeline, and the
# lifecycle memory-bound comparison.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineShards|BenchmarkPipelineEviction' -benchtime 3x .

# One cheap iteration of the lifecycle bench in short mode: a CI smoke that
# the bench code compiles and its invariants hold, without bench-grade cost.
benchsmoke:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineEviction' -benchtime 1x -short .
