// Command gamelensvet runs the gamelens project-invariant analyzers
// (borrowcheck, noalloc, wallclock, detjson, spscaffinity — see
// internal/analysis) over Go packages and exits non-zero on any finding.
//
// Standalone (the lintgate form; patterns as for go build):
//
//	gamelensvet ./...
//
// As a go vet tool, which gives editors findings in-place:
//
//	go vet -vettool=$(which gamelensvet) ./...
//
// In vettool mode go vet invokes the binary once per package with a .cfg
// JSON file; gamelensvet answers the -V=full version handshake and the
// unit protocol itself (the repo builds without golang.org/x/tools, so it
// cannot use unitchecker). Directives still resolve module-wide in both
// modes: the binary locates the enclosing module root and scans it.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"gamelens/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// go vet's version handshake: print a stable fingerprint and exit 0.
	for _, a := range args {
		if a == "-V=full" || a == "-V" {
			fmt.Printf("%s version gamelensvet-1\n", os.Args[0])
			return
		}
		// go vet probes for tool-specific flags; the suite has none.
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(runStandalone(args))
}

// runStandalone loads the pattern packages in the current directory's
// module, runs the suite, and prints findings.
func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := moduleRoot(wd)
	if err != nil {
		fatal(err)
	}
	reg, unknown, err := analysis.ScanModule(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags := analysis.Run(pkgs, reg, analysis.Analyzers())
	for _, d := range unknown {
		fmt.Fprintf(os.Stderr, "%s: directives: unknown gamelens directive %q\n", d.Pos, d.Key)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 || len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "gamelensvet: %d finding(s)\n", len(diags)+len(unknown))
		return 2
	}
	return 0
}

// vetConfig is the subset of go vet's unit .cfg file the tool needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package under the go vet driver protocol.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(err)
	}
	// go vet requires the facts file to exist even though the suite
	// exchanges no facts (directives are re-scanned from source).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	// Skip go test-driven test-variant units (pkg.test, "pkg [pkg.test]").
	if strings.HasSuffix(cfg.ImportPath, ".test") || strings.Contains(cfg.ImportPath, " [") {
		return 0
	}
	root, err := moduleRoot(cfg.Dir)
	if err != nil {
		fatal(err)
	}
	// go vet hands the tool every unit in the build graph, stdlib and
	// dependencies included; the invariants only bind the module's own
	// packages, so everything else passes vacuously.
	if modpath, err := analysis.ModulePath(root); err != nil ||
		(cfg.ImportPath != modpath && !strings.HasPrefix(cfg.ImportPath, modpath+"/")) {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The standalone driver analyzes non-test files only; drop the
		// _test.go files go vet folds into the unit so both drivers
		// enforce the same surface — tests may use the wall clock.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fatal(err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if p, ok := cfg.ImportMap[path]; ok {
			path = p
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("gamelensvet: no export data for %q", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	reg, _, err := analysis.ScanModule(root)
	if err != nil {
		fatal(err)
	}
	pkg := analysis.NewPkg(cfg.ImportPath, cfg.Dir, fset, files, tpkg, info)
	diags := analysis.Run([]*analysis.Pkg{pkg}, reg, analysis.Analyzers())
	for _, d := range diags {
		// go vet's diagnostic line format: file:line:col: message.
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// moduleRoot walks up from dir to the directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	d := dir
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	// Inside GOPATH with no go.mod (go vet on a synthesized package):
	// fall back to `go env GOMOD`.
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err == nil {
		if gomod := strings.TrimSpace(string(out)); gomod != "" && gomod != "/dev/null" && gomod != "NUL" {
			return filepath.Dir(gomod), nil
		}
	}
	return "", fmt.Errorf("gamelensvet: no go.mod above %s", dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gamelensvet:", err)
	os.Exit(1)
}
