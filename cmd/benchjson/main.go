// Command benchjson turns `go test -bench` output into a machine-readable
// JSON document for the performance trajectory (BENCH_N.json files checked
// in per perf PR).
//
// It reads benchmark output on stdin, echoes it unchanged to stdout (so it
// drops into a pipe without hiding the human-readable results), and writes
// one JSON object to the -o file: benchmark name (GOMAXPROCS suffix
// stripped) → metric name → value, covering the standard ns/op, B/op and
// allocs/op columns plus any custom b.ReportMetric units (pkts/s, ns/pkt,
// live_flows, …). When `-count N` repeats a benchmark, the run with the
// lowest ns/op wins and all its metrics are kept together — min-of-N is
// the standard noise filter for throughput benchmarks (the fastest run is
// the least scheduler-disturbed one), and keeping one coherent row avoids
// mixing metrics from different runs. A `_meta` entry records the
// gomaxprocs and num_cpu the suite ran under, so a BENCH_N.json states the
// parallelism its shard-scaling numbers are conditional on. Keys are
// sorted, so the file diffs cleanly across runs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count 3 . | benchjson -o BENCH_6.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

func main() {
	out := flag.String("o", "", "write the JSON document to this file (stdout when empty)")
	flag.Parse()

	results := map[string]map[string]float64{
		"_meta": {
			"gomaxprocs": float64(runtime.GOMAXPROCS(0)),
			"num_cpu":    float64(runtime.NumCPU()),
		},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		parseLine(strings.TrimSpace(line), results)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding: %v\n", err)
		os.Exit(1)
	}
}

// parseLine folds one "BenchmarkName-N  iters  v unit  v unit ..." result
// row into results; anything else is ignored. A repeated name (from
// -count) only replaces the stored row when the new run's ns/op is lower:
// best-of-N, atomically per row.
func parseLine(line string, results map[string]map[string]float64) {
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return
	}
	iters, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return // e.g. "Benchmarking..." prose, not a result row
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	r := map[string]float64{"iterations": iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r[f[i+1]] = v
	}
	if prev, ok := results[name]; ok {
		prevNs, prevHas := prev["ns/op"]
		ns, has := r["ns/op"]
		if prevHas && has && ns >= prevNs {
			return // keep the faster run's whole row
		}
	}
	results[name] = r
}
