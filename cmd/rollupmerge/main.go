// Command rollupmerge folds per-tap rollup checkpoints into one fleet-view
// checkpoint: N monitors, each watching its own segment of the access
// network and checkpointing its per-subscriber window independently, merge
// into the single dashboard an operator actually watches.
//
// Merge semantics are the library's (internal/rollup Merge): window
// geometry must match exactly across all inputs; the merged clock is the
// newest tap's; buckets that have aged out of the merged window prune
// silently, as any tap's own advancing clock would prune them; disjoint
// subscriber sets union — over a partitioned
// subscriber population the merged checkpoint is byte-identical to what a
// single tap covering everything would have written — and overlapping
// subscribers aggregate the union-sum of both taps' sessions (each session
// must be reported by exactly one tap; a session duplicated to two taps
// counts twice).
//
// The output is written atomically (write-temp-rename), so a crash
// mid-merge never corrupts an existing fleet checkpoint. The output path
// may also be one of the inputs.
//
// The usage line below is usageLine in main.go — flag.Usage and this
// comment share it as the single source of truth.
//
// Usage:
//
//	rollupmerge -o FLEET.ckpt TAP.ckpt [TAP.ckpt...]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"gamelens"
)

// usageLine is the one authoritative usage string: flag.Usage prints it,
// and the package comment's Usage section quotes it.
const usageLine = "usage: rollupmerge -o FLEET.ckpt TAP.ckpt [TAP.ckpt...]"

// run merges the tap checkpoints named by args into the -o output; it is
// main without the exit codes, so the merge smoke test can drive the whole
// CLI in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rollupmerge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "fleet checkpoint to write (atomically); may be one of the inputs")
	fs.Usage = func() {
		fmt.Fprintln(stderr, usageLine)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		fs.Usage()
		return errors.New("missing -o output checkpoint")
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return errors.New("no tap checkpoints to merge")
	}

	var fleet *gamelens.Rollup
	for _, path := range fs.Args() {
		tap, err := gamelens.LoadRollup(path)
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		st := tap.Stats()
		fmt.Fprintf(stdout, "  %s: %d subscribers, %d sessions ingested (%d late), window %v/%d, clock %v\n",
			path, st.Subscribers, st.Ingested, st.Late,
			tap.Config().Window, tap.Config().Buckets, tap.Clock().Format(time.RFC3339))
		if fleet == nil {
			fleet = tap
			continue
		}
		if err := fleet.Merge(tap); err != nil {
			return fmt.Errorf("merging %s: %w", path, err)
		}
	}
	if err := fleet.SaveFile(*out); err != nil {
		return fmt.Errorf("writing fleet checkpoint: %w", err)
	}
	st := fleet.Stats()
	fmt.Fprintf(stdout, "merged %d checkpoints into %s: %d subscribers, %d sessions ingested (%d late), clock %v\n",
		fs.NArg(), *out, st.Subscribers, st.Ingested, st.Late, fleet.Clock().Format(time.RFC3339))
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rollupmerge:", err)
		os.Exit(1)
	}
}
