// Command rollupmerge folds per-tap rollup checkpoints and archive
// partition files into one fleet-view checkpoint: N monitors, each watching
// its own segment of the access network and persisting its per-subscriber
// history independently, merge into the single dashboard an operator
// actually watches. It also queries a tiered historical archive directory
// in place (-archive), answering the cross-tier range/percentile/top-K
// questions without a merge step.
//
// Merge semantics are the library's (internal/rollup Merge): window
// geometry must match exactly across all checkpoint inputs; the merged
// clock is the newest tap's; buckets that have aged out of the merged
// window prune silently, as any tap's own advancing clock would prune them;
// disjoint subscriber sets union — over a partitioned
// subscriber population the merged checkpoint is byte-identical to what a
// single tap covering everything would have written — and overlapping
// subscribers aggregate the union-sum of both taps' sessions (each session
// must be reported by exactly one tap; a session duplicated to two taps
// counts twice).
//
// Archive partition files (hour-*.part, day-*.part, week-*.part, as sealed
// by classify -archive) fold in via Rollup.InjectCounts: each subscriber
// cell lands whole in the fleet bucket containing the partition's start —
// the partition is the archive's unit of resolution, so a fold cannot be
// finer than the tier it reads. Folding both a coarse partition and the
// fine partitions it was compacted from double-counts; fold one covering
// tier, exactly as the store's own query path selects one. When every
// input is a partition file, the fleet window is synthesized to cover all
// of them at the finest input tier's resolution; with at least one
// checkpoint input, the first checkpoint's geometry (and aging) wins.
//
// The output is written atomically (write-temp-rename), so a crash
// mid-merge never corrupts an existing fleet checkpoint. The output path
// may also be one of the inputs.
//
// In query mode (-archive DIR) no output is written: the archive's
// manifest supplies the tier geometry, [-from, -to) bounds the range
// (RFC3339; each defaults to unbounded), and the report prints the
// per-subscriber aggregates, the fleet total with exact merged
// percentiles, and the -top most impaired subscribers — in the store's
// canonical deterministic order, so the same archive state prints
// byte-identically on every run.
//
// The usage line below is usageLine in main.go — flag.Usage and this
// comment share it as the single source of truth.
//
// Usage:
//
//	rollupmerge -o FLEET.ckpt INPUT.ckpt|INPUT.part [INPUT...] | rollupmerge -archive DIR [-from RFC3339] [-to RFC3339] [-top K]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"gamelens"
)

// usageLine is the one authoritative usage string: flag.Usage prints it,
// and the package comment's Usage section quotes it.
const usageLine = "usage: rollupmerge -o FLEET.ckpt INPUT.ckpt|INPUT.part [INPUT...] | rollupmerge -archive DIR [-from RFC3339] [-to RFC3339] [-top K]"

// run merges the inputs named by args into the -o output, or queries the
// -archive directory; it is main without the exit codes, so the merge smoke
// test can drive the whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rollupmerge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "fleet checkpoint to write (atomically); may be one of the inputs")
	archiveDir := fs.String("archive", "", "tiered archive directory to query in place instead of merging inputs")
	fromStr := fs.String("from", "", "query range start, RFC3339 (default: everything; requires -archive)")
	toStr := fs.String("to", "", "query range end, exclusive, RFC3339 (default: everything; requires -archive)")
	topK := fs.Int("top", 5, "most-impaired subscribers to rank in the query report (negative = all, 0 = none; requires -archive)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, usageLine)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	topSet := false
	fs.Visit(func(f *flag.Flag) { topSet = topSet || f.Name == "top" })

	if *archiveDir != "" {
		if *out != "" || fs.NArg() != 0 {
			fs.Usage()
			return errors.New("-archive queries in place: no -o output, no file inputs")
		}
		from, to, err := parseRange(*fromStr, *toStr)
		if err != nil {
			return err
		}
		return runQuery(*archiveDir, from, to, *topK, stdout, stderr)
	}
	if *fromStr != "" || *toStr != "" || topSet {
		return errors.New("-from/-to/-top require -archive")
	}
	if *out == "" {
		fs.Usage()
		return errors.New("missing -o output checkpoint")
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return errors.New("no inputs to merge")
	}
	return runMerge(*out, fs.Args(), stdout)
}

// input is one loaded command-line input: exactly one of ckpt or part.
type input struct {
	path string
	ckpt *gamelens.Rollup
	part *gamelens.ArchivePartition
}

// runMerge folds checkpoint and partition inputs into one fleet checkpoint.
func runMerge(out string, paths []string, stdout io.Writer) error {
	inputs := make([]input, 0, len(paths))
	var fleet *gamelens.Rollup
	for _, path := range paths {
		if strings.HasSuffix(path, ".part") {
			p, err := gamelens.ReadArchivePartition(path)
			if err != nil {
				return fmt.Errorf("loading %s: %w", path, err)
			}
			var sessions int64
			for i := range p.Subs {
				sessions += p.Subs[i].Window.Sessions
			}
			fmt.Fprintf(stdout, "  %s: %s partition [%v, %v), %d subscribers, %d sessions\n",
				path, p.Tier, p.Start.Format(time.RFC3339),
				p.Start.Add(p.Span).Format(time.RFC3339), len(p.Subs), sessions)
			inputs = append(inputs, input{path: path, part: p})
			continue
		}
		tap, err := gamelens.LoadRollup(path)
		if err != nil {
			return fmt.Errorf("loading %s: %w", path, err)
		}
		st := tap.Stats()
		fmt.Fprintf(stdout, "  %s: %d subscribers, %d sessions ingested (%d late), window %v/%d, clock %v\n",
			path, st.Subscribers, st.Ingested, st.Late,
			tap.Config().Window, tap.Config().Buckets, tap.Clock().Format(time.RFC3339))
		if fleet == nil {
			fleet = tap // the first checkpoint's geometry wins
		}
		inputs = append(inputs, input{path: path, ckpt: tap})
	}
	if fleet == nil {
		fleet = gamelens.NewRollup(partitionGeometry(inputs))
	}
	for _, in := range inputs {
		switch {
		case in.ckpt == fleet:
			// already the base
		case in.ckpt != nil:
			if err := fleet.Merge(in.ckpt); err != nil {
				return fmt.Errorf("merging %s: %w", in.path, err)
			}
		default:
			for i := range in.part.Subs {
				a := &in.part.Subs[i]
				fleet.InjectCounts(in.part.Start, a.Subscriber, &a.Window)
			}
		}
	}
	if err := fleet.SaveFile(out); err != nil {
		return fmt.Errorf("writing fleet checkpoint: %w", err)
	}
	st := fleet.Stats()
	fmt.Fprintf(stdout, "merged %d inputs into %s: %d subscribers, %d sessions ingested (%d late), clock %v\n",
		len(inputs), out, st.Subscribers, st.Ingested, st.Late, fleet.Clock().Format(time.RFC3339))
	return nil
}

// partitionGeometry synthesizes a fleet window covering every partition
// input at the finest input tier's resolution — the geometry used when no
// checkpoint input supplies one. The bucket width is the smallest input
// span, and the window stretches from the earliest start to the latest end
// (aligned to that width), so an all-partition fold never ages anything
// out regardless of input order.
func partitionGeometry(inputs []input) gamelens.RollupConfig {
	width := time.Duration(math.MaxInt64)
	startNs, endNs := int64(math.MaxInt64), int64(math.MinInt64)
	for _, in := range inputs {
		if in.part == nil {
			continue
		}
		if in.part.Span < width {
			width = in.part.Span
		}
		if s := in.part.Start.UnixNano(); s < startNs {
			startNs = s
		}
		if e := in.part.Start.Add(in.part.Span).UnixNano(); e > endNs {
			endNs = e
		}
	}
	w := int64(width)
	startNs = floorDiv(startNs, w) * w
	endNs = -floorDiv(-endNs, w) * w
	buckets := int((endNs - startNs) / w)
	return gamelens.RollupConfig{Window: time.Duration(buckets) * width, Buckets: buckets}
}

// floorDiv is integer division rounding toward negative infinity (partition
// starts below the epoch are legal).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// parseRange parses the -from/-to bounds; an empty bound is unbounded.
func parseRange(fromStr, toStr string) (from, to time.Time, err error) {
	from, to = time.Unix(0, math.MinInt64), time.Unix(0, math.MaxInt64)
	if fromStr != "" {
		if from, err = time.Parse(time.RFC3339, fromStr); err != nil {
			return from, to, fmt.Errorf("-from: %w", err)
		}
	}
	if toStr != "" {
		if to, err = time.Parse(time.RFC3339, toStr); err != nil {
			return from, to, fmt.Errorf("-to: %w", err)
		}
	}
	return from, to, nil
}

// runQuery opens the archive (geometry adopted from its manifest) and
// prints the canonical range report: per-subscriber aggregates, the fleet
// total with exact merged percentiles, and the top-K impaired ranking.
func runQuery(dir string, from, to time.Time, top int, stdout, stderr io.Writer) error {
	arch, err := gamelens.OpenArchive(gamelens.ArchiveConfig{Dir: dir})
	if err != nil {
		return err
	}
	st := arch.Stats()
	for _, q := range st.Quarantined {
		fmt.Fprintf(stderr, "rollupmerge: warning: quarantined corrupt archive file as %s\n", q)
	}
	fmt.Fprintf(stdout, "archive %s: %d hour / %d day / %d week partitions, %d pending, clock %v\n",
		dir, st.Partitions[gamelens.ArchiveTierHour], st.Partitions[gamelens.ArchiveTierDay],
		st.Partitions[gamelens.ArchiveTierWeek], st.Pending, arch.Clock().Format(time.RFC3339))

	aggs := arch.Range(from, to)
	fmt.Fprintf(stdout, "per-subscriber aggregates over [%s, %s): %d subscribers\n",
		boundLabel(from), boundLabel(to), len(aggs))
	for i := range aggs {
		printAggregate(stdout, "  ", &aggs[i])
	}

	total := arch.Total(from, to)
	mbps, proxy := total.ThroughputPercentiles(), total.QoEProxyPercentiles()
	fmt.Fprintf(stdout, "fleet total: %d sessions (%d evicted)  Mbps p50/p90/p99 %.1f/%.1f/%.1f  QoE good obj %3.0f%% eff %3.0f%%  proxy p50/p90/p99 %.2f/%.2f/%.2f\n",
		total.Sessions, total.Evicted, mbps.P50, mbps.P90, mbps.P99,
		100*total.GoodShare(false), 100*total.GoodShare(true), proxy.P50, proxy.P90, proxy.P99)

	if top != 0 {
		ranked := arch.TopImpaired(from, to, top)
		fmt.Fprintf(stdout, "top %d impaired:\n", len(ranked))
		for i := range ranked {
			printAggregate(stdout, fmt.Sprintf("  #%d ", i+1), &ranked[i])
		}
	}
	return nil
}

// boundLabel renders one range bound; the unbounded sentinels print as an
// ellipsis rather than their year-1677/2262 expansions.
func boundLabel(t time.Time) string {
	if t.UnixNano() == math.MinInt64 || t.UnixNano() == math.MaxInt64 {
		return "…"
	}
	return t.Format(time.RFC3339)
}

// printAggregate renders one subscriber's range aggregate.
func printAggregate(w io.Writer, prefix string, a *gamelens.SubscriberAggregate) {
	win := &a.Window
	mbps := win.ThroughputPercentiles()
	fmt.Fprintf(w, "%s%-15v %3d sessions (%d evicted)  %5.1f Mbps (p50/p90/p99 %.1f/%.1f/%.1f)  QoE good obj %3.0f%% eff %3.0f%% proxy p50 %.2f\n",
		prefix, a.Subscriber, win.Sessions, win.Evicted, win.MeanDownMbps(),
		mbps.P50, mbps.P90, mbps.P99,
		100*win.GoodShare(false), 100*win.GoodShare(true), win.QoEProxyQuantile(0.5))
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rollupmerge:", err)
		os.Exit(1)
	}
}
