package main

// Archive-input coverage: partition files sealed by a real store fold into
// a fleet checkpoint (alone and mixed with tap checkpoints), and query mode
// answers range/percentile/top-K questions over the archive directory with
// deterministic output.

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"gamelens"
)

// archBase is hour-span aligned for the miniature tier spans below.
var archBase = time.Date(2026, 7, 10, 8, 0, 0, 0, time.UTC)

// sealedArchive drives a store with miniature tier spans (1m hours, 4m
// days, 12m weeks) over 10 minutes of entries and returns its directory:
// several sealed hour partitions, at least one compacted day, and a
// pending tail.
func sealedArchive(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "archive")
	arch, err := gamelens.OpenArchive(gamelens.ArchiveConfig{
		Dir:        dir,
		Spans:      [3]time.Duration{time.Minute, 4 * time.Minute, 12 * time.Minute},
		Linger:     30 * time.Second,
		Retain:     [3]time.Duration{-1, -1, -1},
		FlushEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		e := gamelens.RollupEntry{
			Subscriber:   netip.AddrFrom4([4]byte{10, 2, 0, byte(1 + i%5)}),
			End:          archBase.Add(time.Duration(i) * 5 * time.Second),
			MeanDownMbps: 4 + float64(i%8),
			QoEProxy:     0.25 * float64(1+i%3),
		}
		if i%2 == 0 {
			e.Title = "Fortnite"
		} else {
			e.Pattern = "continuous"
		}
		arch.Observe(e)
		if i%10 == 9 {
			if err := arch.Tick(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := arch.Final(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// hourParts globs the archive's sealed hour partitions in name order.
func hourParts(t *testing.T, dir string) []string {
	t.Helper()
	parts, err := filepath.Glob(filepath.Join(dir, "hour-*.part"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(parts)
	if len(parts) < 2 {
		t.Fatalf("only %d sealed hour partitions, want several", len(parts))
	}
	return parts
}

func TestRollupMergePartitionInputs(t *testing.T) {
	dir := sealedArchive(t)
	parts := hourParts(t, dir)

	// The sessions the fold should account for: everything the sealed hour
	// partitions carry.
	var wantSessions int64
	for _, path := range parts {
		p, err := gamelens.ReadArchivePartition(path)
		if err != nil {
			t.Fatalf("reading %s back: %v", path, err)
		}
		for i := range p.Subs {
			wantSessions += p.Subs[i].Window.Sessions
		}
	}

	out := filepath.Join(t.TempDir(), "fleet.ckpt")
	var stdout, stderr bytes.Buffer
	if err := run(append([]string{"-o", out}, parts...), &stdout, &stderr); err != nil {
		t.Fatalf("folding partitions failed: %v\nstderr: %s", err, stderr.String())
	}
	fleet, err := gamelens.LoadRollup(out)
	if err != nil {
		t.Fatalf("fleet checkpoint does not restore: %v", err)
	}
	st := fleet.Stats()
	if st.Ingested != wantSessions || st.Late != 0 {
		t.Errorf("fold ingested %d sessions (%d late), want all %d sealed sessions, none late",
			st.Ingested, st.Late, wantSessions)
	}
	if st.Subscribers != 5 {
		t.Errorf("fold has %d subscribers, want 5", st.Subscribers)
	}
	// The synthesized window covers every partition: the fleet total must
	// carry every sealed session's throughput sample.
	if got := fleet.Total(); got.Sessions != wantSessions {
		t.Errorf("fleet total %d sessions, want %d", got.Sessions, wantSessions)
	}
}

func TestRollupMergeMixedInputs(t *testing.T) {
	dir := sealedArchive(t)
	parts := hourParts(t, dir)

	// A tap checkpoint whose 4h window spans the partitions' time range:
	// its geometry wins, and the partitions fold into it without aging out.
	tap := gamelens.NewRollup(gamelens.RollupConfig{Window: 4 * time.Hour, Buckets: 8})
	for i := 0; i < 10; i++ {
		tap.Observe(tapEntry(i%3, i))
	}
	tapPath := filepath.Join(t.TempDir(), "tap.ckpt")
	if err := tap.SaveFile(tapPath); err != nil {
		t.Fatal(err)
	}

	var partSessions int64
	p0, err := gamelens.ReadArchivePartition(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range p0.Subs {
		partSessions += p0.Subs[i].Window.Sessions
	}

	out := filepath.Join(t.TempDir(), "fleet.ckpt")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, tapPath, parts[0]}, &stdout, &stderr); err != nil {
		t.Fatalf("mixed merge failed: %v\nstderr: %s", err, stderr.String())
	}
	fleet, err := gamelens.LoadRollup(out)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fleet.Config().Window, 4*time.Hour; got != want {
		t.Errorf("fleet window %v, want the checkpoint's %v", got, want)
	}
	if got, want := fleet.Stats().Ingested, int64(10)+partSessions; got != want {
		t.Errorf("mixed merge ingested %d sessions, want %d", got, want)
	}

	// A corrupt partition input refuses, and nothing is written.
	bad := filepath.Join(t.TempDir(), "hour-0.part")
	if err := os.WriteFile(bad, []byte("not a partition"), 0o644); err != nil {
		t.Fatal(err)
	}
	badOut := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := run([]string{"-o", badOut, bad}, &stdout, &stderr); err == nil {
		t.Error("corrupt partition input merged without error")
	}
	if _, err := os.Stat(badOut); !os.IsNotExist(err) {
		t.Error("a failed merge wrote the output checkpoint")
	}
}

func TestRollupMergeArchiveQuery(t *testing.T) {
	dir := sealedArchive(t)

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-archive", dir, "-top", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("archive query failed: %v\nstderr: %s", err, stderr.String())
	}
	report := stdout.String()
	for _, want := range []string{
		"per-subscriber aggregates over […, …): 5 subscribers",
		"fleet total: 120 sessions",
		"top 2 impaired:",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("query report missing %q:\n%s", want, report)
		}
	}

	// The same query twice prints byte-identically (the canonical-output
	// contract), and a bounded range drops what lies outside it.
	var again bytes.Buffer
	if err := run([]string{"-archive", dir, "-top", "2"}, &again, &stderr); err != nil {
		t.Fatal(err)
	}
	if report != again.String() {
		t.Error("identical queries printed differently")
	}
	var bounded bytes.Buffer
	err := run([]string{"-archive", dir,
		"-from", archBase.Format(time.RFC3339),
		"-to", archBase.Add(2 * time.Minute).Format(time.RFC3339)}, &bounded, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bounded.String(), "fleet total: 24 sessions") {
		t.Errorf("bounded query did not cut to the first two hours (24 sessions):\n%s", bounded.String())
	}

	// Flag combinations that cannot mean anything refuse.
	for name, args := range map[string][]string{
		"query with -o":          {"-archive", dir, "-o", filepath.Join(t.TempDir(), "x.ckpt")},
		"query with inputs":      {"-archive", dir, "tap.ckpt"},
		"range without -archive": {"-from", "2026-07-10T08:00:00Z", "-o", "x.ckpt", "tap.ckpt"},
		"top without -archive":   {"-top", "3", "-o", "x.ckpt", "tap.ckpt"},
		"bad -from":              {"-archive", dir, "-from", "yesterday"},
	} {
		var sink bytes.Buffer
		if err := run(args, &sink, &sink); err == nil {
			t.Errorf("%s: run succeeded, want error", name)
		}
	}
}
