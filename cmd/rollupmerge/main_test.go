package main

// The mergesmoke gate: drives the whole CLI in-process over real
// checkpoint files — per-tap checkpoints in, one fleet checkpoint out —
// and pins the partitioned-taps contract end to end: the merged file is
// byte-identical to the checkpoint a single tap covering every subscriber
// would have written.

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gamelens"
	"gamelens/internal/qoe"
)

// tapEntry synthesizes one deterministic session for subscriber sub.
func tapEntry(sub, i int) gamelens.RollupEntry {
	e := gamelens.RollupEntry{
		Subscriber:   netip.AddrFrom4([4]byte{10, 1, 0, byte(sub)}),
		End:          time.Date(2026, 7, 10, 8, 0, 0, 0, time.UTC).Add(time.Duration(i) * 2 * time.Minute),
		MeanDownMbps: 5 + float64(i%25),
		QoEProxy:     float64(i%10) / 9,
		Objective:    qoe.Level(i % 3),
		Effective:    qoe.Level((i + 1) % 3),
	}
	if i%3 == 0 {
		e.Title = "Fortnite"
	} else {
		e.Pattern = "continuous-play"
	}
	return e
}

func TestRollupMergeCLI(t *testing.T) {
	dir := t.TempDir()
	cfg := gamelens.RollupConfig{Window: 4 * time.Hour, Buckets: 8}

	// One rollup per tap (subscribers partitioned by parity) and the
	// single-tap reference that saw everything.
	tapA, tapB := gamelens.NewRollup(cfg), gamelens.NewRollup(cfg)
	single := gamelens.NewRollup(cfg)
	for i := 0; i < 60; i++ {
		e := tapEntry(i%8, i)
		single.Observe(e)
		if (i%8)%2 == 0 {
			tapA.Observe(e)
		} else {
			tapB.Observe(e)
		}
	}
	pathA := filepath.Join(dir, "tapA.ckpt")
	pathB := filepath.Join(dir, "tapB.ckpt")
	for path, ru := range map[string]*gamelens.Rollup{pathA: tapA, pathB: tapB} {
		if err := ru.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}

	out := filepath.Join(dir, "fleet.ckpt")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-o", out, pathA, pathB}, &stdout, &stderr); err != nil {
		t.Fatalf("rollupmerge failed: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "merged 2 inputs") {
		t.Errorf("summary line missing from output:\n%s", stdout.String())
	}

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := single.Snapshot(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("fleet checkpoint differs from single-tap reference:\n%s\nvs\n%s", got, want.String())
	}

	// The merged file restores and answers like the single-tap rollup.
	fleet, err := gamelens.LoadRollup(out)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fleet.Stats(), single.Stats(); got != want {
		t.Errorf("fleet stats %+v, want %+v", got, want)
	}
	fleetTotal, singleTotal := fleet.Total(), single.Total()
	if got, want := fleetTotal.ThroughputPercentiles(), singleTotal.ThroughputPercentiles(); got != want {
		t.Errorf("fleet percentiles %+v, want %+v", got, want)
	}
}

// TestRollupMergeCLIErrors pins the refusal paths: bad flags, a missing
// input, and a geometry mismatch all error out instead of writing a wrong
// fleet view.
func TestRollupMergeCLIErrors(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "ok.ckpt")
	ru := gamelens.NewRollup(gamelens.RollupConfig{Window: time.Hour})
	ru.Observe(tapEntry(1, 1))
	if err := ru.SaveFile(ok); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "other.ckpt")
	ru2 := gamelens.NewRollup(gamelens.RollupConfig{Window: 2 * time.Hour})
	ru2.Observe(tapEntry(2, 2))
	if err := ru2.SaveFile(other); err != nil {
		t.Fatal(err)
	}

	var sink bytes.Buffer
	out := filepath.Join(dir, "out.ckpt")
	for name, args := range map[string][]string{
		"no output":         {ok},
		"no inputs":         {"-o", out},
		"missing input":     {"-o", out, filepath.Join(dir, "nope.ckpt")},
		"geometry mismatch": {"-o", out, ok, other},
	} {
		if err := run(args, &sink, &sink); err == nil {
			t.Errorf("%s: run succeeded, want error", name)
		}
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Error("a failed merge wrote the output checkpoint")
	}
}
