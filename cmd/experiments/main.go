// Command experiments regenerates every table and figure of the paper's
// evaluation from the built-in substrates and prints them as text tables.
//
// Usage:
//
//	experiments [-full] [-seed N] [-only "Table 3,Figure 8"]
//
// The default sizing finishes in a couple of minutes; -full approaches the
// paper's dataset sizes and takes much longer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"gamelens/internal/experiments"
)

//gamelens:wallclock-ok operator-facing run timing (the "done in" stderr line)
func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	full := flag.Bool("full", false, "paper-scale sizing (slow)")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	trainPer := flag.Int("train-per-title", 0, "override training sessions per title")
	testPer := flag.Int("test-per-title", 0, "override test sessions per title")
	minutes := flag.Int("minutes", 0, "override session length in minutes")
	fleetN := flag.Int("fleet", 0, "override fleet session count")
	trees := flag.Int("trees", 0, "override forest size")
	flag.Parse()

	opts := experiments.Options{Seed: *seed}
	if *full {
		opts = experiments.Full()
		opts.Seed = *seed
	}
	if *trainPer > 0 {
		opts.TrainPerTitle = *trainPer
	}
	if *testPer > 0 {
		opts.TestPerTitle = *testPer
	}
	if *minutes > 0 {
		opts.SessionMinutes = *minutes
	}
	if *fleetN > 0 {
		opts.FleetSessions = *fleetN
	}
	if *trees > 0 {
		opts.Trees = *trees
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[strings.ToLower(id)] = true
		}
	}
	want := func(id string) bool {
		return len(wanted) == 0 || wanted[strings.ToLower(id)]
	}

	emit := func(r *experiments.Result, err error) {
		if err != nil {
			log.Fatalf("%v", err)
		}
		if r != nil && want(r.ID) {
			fmt.Println(r)
		}
	}

	start := time.Now()
	emit(experiments.Table1(opts), nil)
	emit(experiments.Table2(opts), nil)
	emit(experiments.Figure3(opts), nil)
	emit(experiments.Figure4(opts), nil)
	emit(experiments.Figure5(opts), nil)

	needCorpus := len(wanted) == 0
	for _, id := range []string{"figure 8", "table 3", "figure 9", "figure 10", "table 4",
		"figure 14", "figure 15", "table 5", "ablations",
		"figure 11", "figure 12", "figure 13", "field validation"} {
		if wanted[id] {
			needCorpus = true
		}
	}
	if !needCorpus {
		return
	}

	log.Printf("generating corpus...")
	c := experiments.NewCorpus(opts)
	log.Printf("corpus ready: %d train / %d test sessions", len(c.Train), len(c.Test))

	r8, err := experiments.Figure8(c)
	emit(r8, err)
	r3, err := experiments.Table3(c)
	emit(r3, err)
	r9, err := experiments.Figure9(c)
	emit(r9, err)
	r10, err := experiments.Figure10(c)
	emit(r10, err)
	r4, err := experiments.Table4(c)
	emit(r4, err)
	r14, err := experiments.Figure14(c)
	emit(r14, err)
	r15, err := experiments.Figure15(c)
	emit(r15, err)
	r5, err := experiments.Table5(c)
	emit(r5, err)
	ra, err := experiments.Ablations(c)
	emit(ra, err)

	log.Printf("simulating field deployment (%d sessions)...", opts.FleetSessions)
	fr, err := experiments.NewFieldRun(c)
	if err != nil {
		log.Fatalf("field run: %v", err)
	}
	emit(experiments.Figure11(fr), nil)
	emit(experiments.Figure12(fr), nil)
	emit(experiments.Figure13(fr), nil)
	emit(experiments.FieldValidation(fr), nil)

	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Second))
}
