// Command gensessions generates a labeled cloud-gaming traffic dataset in
// the shape of the paper's released lab capture: one PCAP plus one CSV label
// sidecar per session (game title, genre, pattern, platform configuration,
// and the timestamped player activity stages).
//
// Usage:
//
//	gensessions -out DIR [-sessions N] [-minutes M] [-seed S] [-pcap-limit SECONDS]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"gamelens/internal/gamesim"
)

//gamelens:wallclock-ok synthetic captures are stamped from the real clock by design
func main() {
	log.SetFlags(0)
	log.SetPrefix("gensessions: ")
	out := flag.String("out", "", "output directory (required)")
	sessions := flag.Int("sessions", 26, "number of sessions to generate")
	minutes := flag.Int("minutes", 10, "session length in minutes")
	seed := flag.Int64("seed", 1, "random seed")
	pcapLimit := flag.Int("pcap-limit", 120, "seconds of full-fidelity packets per PCAP (0 = whole session; large!)")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	start := time.Now().UTC()
	for i := 0; i < *sessions; i++ {
		id := gamesim.TitleID(i % int(gamesim.NumTitles))
		cfg := gamesim.RandomConfig(rng)
		s := gamesim.Generate(id, cfg, gamesim.LabNetwork(), *seed+int64(i)*7919,
			gamesim.Options{SessionLength: time.Duration(*minutes) * time.Minute})

		base := filepath.Join(*out, fmt.Sprintf("session-%03d-%s", i, sanitize(s.Title.Name)))
		pcapFile, err := os.Create(base + ".pcap")
		if err != nil {
			log.Fatal(err)
		}
		limit := time.Duration(*pcapLimit) * time.Second
		if err := s.WritePCAP(pcapFile, start, limit); err != nil {
			log.Fatalf("writing %s: %v", pcapFile.Name(), err)
		}
		if err := pcapFile.Close(); err != nil {
			log.Fatal(err)
		}
		labelFile, err := os.Create(base + ".labels.csv")
		if err != nil {
			log.Fatal(err)
		}
		if err := s.WriteLabelsCSV(labelFile); err != nil {
			log.Fatalf("writing %s: %v", labelFile.Name(), err)
		}
		if err := labelFile.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%s, %v, %.0f min)", base+".pcap", s.Title.Name, s.Config, s.Duration().Minutes())
	}
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ', r == ':', r == '\'':
			out = append(out, '-')
		}
	}
	return string(out)
}
