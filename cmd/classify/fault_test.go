package main

// Fault-injected CLI coverage: drives the real run() — flags, recovery
// scan, engine replay, final checkpoint — against an injected filesystem.
// The contract under test is satellite-critical: when the final checkpoint
// cannot be written after bounded retries, classify must exit non-zero
// with the failure named (errCheckpointWrite), never report success over
// stale durable state.

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gamelens"
	"gamelens/internal/faultinject"
	"gamelens/internal/gamesim"
	"gamelens/internal/mlkit"
	"gamelens/internal/persist"
	"gamelens/internal/stageclass"
	"gamelens/internal/titleclass"
)

var (
	tinyModelsOnce sync.Once
	tinyModels     *gamelens.Models
)

// useTinyModels swaps the CLI's training seam for a small, cached corpus so
// run() starts in well under a second instead of training the full default
// models on every invocation.
func useTinyModels(t *testing.T) {
	t.Helper()
	tinyModelsOnce.Do(func() {
		m, err := gamelens.TrainModels(42, gamelens.TrainOptions{
			SessionsPerTitle: 2,
			SessionLength:    4 * time.Minute,
			TitleConfig:      titleclass.Config{Forest: mlkit.ForestConfig{NumTrees: 8, MaxDepth: 8}},
			StageConfig: stageclass.Config{
				StageForest:   mlkit.ForestConfig{NumTrees: 8, MaxDepth: 8},
				PatternForest: mlkit.ForestConfig{NumTrees: 8, MaxDepth: 8},
			},
		})
		if err != nil {
			panic(err)
		}
		tinyModels = m
	})
	prev := trainModels
	trainModels = func(int64) (*gamelens.Models, error) { return tinyModels, nil }
	t.Cleanup(func() { trainModels = prev })
}

// smallCapture writes a one-session gaming PCAP and returns its path.
func smallCapture(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	sess := gamesim.Generate(0, gamesim.RandomConfig(rng), gamesim.LabNetwork(),
		9100, gamesim.Options{SessionLength: 2 * time.Minute})
	path := filepath.Join(t.TempDir(), "capture.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.WritePCAP(f, time.Date(2026, 7, 21, 8, 0, 0, 0, time.UTC), 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// injectFS points the CLI's checkpoint filesystem at a fault-injecting
// wrapper for the duration of the test.
func injectFS(t *testing.T, fs persist.FS) {
	t.Helper()
	prev := ckptFS
	ckptFS = fs
	t.Cleanup(func() { ckptFS = prev })
}

func TestFaultGateFinalCheckpointFailureExitsNonZero(t *testing.T) {
	useTinyModels(t)
	capture := smallCapture(t)
	ckpt := filepath.Join(t.TempDir(), "rollup.ckpt")

	// Every fsync fails with a full disk: the final checkpoint exhausts its
	// retries and run() must surface the named error (→ non-zero exit in
	// main) with the underlying cause still inspectable.
	injectFS(t, faultinject.New(nil, faultinject.FailAll(faultinject.OpSync, faultinject.ErrNoSpace)))
	err := run([]string{"-shards", "2", "-rollup", "30m", "-checkpoint", ckpt, capture}, io.Discard)
	if err == nil {
		t.Fatal("run reported success with an unwritable checkpoint")
	}
	if !errors.Is(err, errCheckpointWrite) {
		t.Errorf("failure not named errCheckpointWrite: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("underlying ENOSPC not preserved: %v", err)
	}
	if _, statErr := os.Stat(ckpt); !os.IsNotExist(statErr) {
		t.Errorf("failed final checkpoint left a target file (stat: %v)", statErr)
	}
}

func TestFaultGateRunCheckpointRoundTrip(t *testing.T) {
	useTinyModels(t)
	capture := smallCapture(t)
	ckpt := filepath.Join(t.TempDir(), "rollup.ckpt")

	// First fsync fails ENOSPC, the bounded retry succeeds: the run exits
	// clean and the checkpoint restores.
	fs := faultinject.New(nil, faultinject.FailNth(faultinject.OpSync, 1, faultinject.ErrNoSpace))
	injectFS(t, fs)
	var out bytes.Buffer
	if err := run([]string{"-shards", "2", "-rollup", "30m", "-checkpoint", ckpt, capture}, &out); err != nil {
		t.Fatalf("run with one transient ENOSPC failed: %v", err)
	}
	if fs.Count(faultinject.OpSync) < 2 {
		t.Errorf("only %d sync attempts observed; the retry never ran", fs.Count(faultinject.OpSync))
	}
	restored, err := gamelens.LoadRollup(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint does not restore: %v", err)
	}

	// And a second run recovers from it: the resolver resumes the restored
	// window rather than starting cold.
	injectFS(t, persist.OS)
	ru, _, resumed, err := resolveRollup(ckpt, 0, 1, false)
	if err != nil || !resumed {
		t.Fatalf("round trip resume failed: resumed=%v err=%v", resumed, err)
	}
	if got, want := ru.Clock(), restored.Clock(); !got.Equal(want) {
		t.Errorf("resumed clock %v, want %v", got, want)
	}
	if !strings.Contains(out.String(), "per-subscriber window") {
		t.Errorf("dashboard missing from run output:\n%s", out.String())
	}
}
