package main

// CLI coverage for the tiered historical archive: -archive runs the real
// run() path — store open, batch-sink tap, emitter-hook seal driver,
// final flush — against a real capture, resumes the same directory across
// runs, and surfaces a final flush failure as the named errArchiveWrite.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"gamelens"
	"gamelens/internal/faultinject"
)

func TestArchiveRunAndResume(t *testing.T) {
	useTinyModels(t)
	capture := smallCapture(t)
	dir := filepath.Join(t.TempDir(), "archive")
	ckpt := filepath.Join(t.TempDir(), "rollup.ckpt")

	// Run 1: archive only, no rollup — the archive drives the emitter's
	// checkpoint hook directly.
	if err := run([]string{"-shards", "2", "-archive", dir, capture}, io.Discard); err != nil {
		t.Fatalf("archive-only run failed: %v", err)
	}
	for _, name := range []string{"MANIFEST.json", "PENDING.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("run left no %s: %v", name, err)
		}
	}
	s1, err := gamelens.OpenArchive(gamelens.ArchiveConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopening archive: %v", err)
	}
	st1 := s1.Stats()
	if st1.Ingested == 0 {
		t.Fatal("archive ingested nothing")
	}
	if st1.Late != 0 || len(st1.Quarantined) != 0 {
		t.Errorf("archive not clean after run: late=%d quarantined=%v", st1.Late, st1.Quarantined)
	}

	// Run 2: same directory plus a rollup checkpoint — the archive rides
	// the Checkpointer's Archive hook, its geometry adopted from the
	// manifest, its pending tail resumed. The same capture replays onto
	// the still-unsealed hour, so nothing is late and ingest doubles.
	if err := run([]string{"-shards", "2", "-rollup", "30m", "-checkpoint", ckpt,
		"-archive", dir, capture}, io.Discard); err != nil {
		t.Fatalf("resumed archive run failed: %v", err)
	}
	s2, err := gamelens.OpenArchive(gamelens.ArchiveConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopening archive after resume: %v", err)
	}
	st2 := s2.Stats()
	if st2.Ingested != 2*st1.Ingested {
		t.Errorf("resumed run ingested %d entries total, want %d (double the first run)",
			st2.Ingested, 2*st1.Ingested)
	}
	if st2.Late != 0 {
		t.Errorf("resumed run dropped %d entries late", st2.Late)
	}
}

func TestArchiveRetainFlagsRequireArchive(t *testing.T) {
	err := run([]string{"-retain-hour", "1h", "capture.pcap"}, io.Discard)
	if err == nil {
		t.Fatal("-retain-hour accepted without -archive")
	}
	if !strings.Contains(err.Error(), "-archive") {
		t.Errorf("refusal does not name -archive: %v", err)
	}
}

func TestFaultGateArchiveFinalFlushFailureExitsNonZero(t *testing.T) {
	useTinyModels(t)
	capture := smallCapture(t)
	dir := filepath.Join(t.TempDir(), "archive")

	// Every flush of the pending tail hits a full disk (the Substr filter
	// leaves the manifest write at open untouched): the final flush
	// exhausts the persist protocol's retries and run() must surface the
	// named error — never report success over a tail that was lost.
	injectFS(t, faultinject.New(nil, faultinject.Rule{
		Op: faultinject.OpSync, Substr: "PENDING", Nth: 1, Count: -1,
		Err: faultinject.ErrNoSpace,
	}))
	err := run([]string{"-shards", "2", "-archive", dir, capture}, io.Discard)
	if err == nil {
		t.Fatal("run reported success with an unwritable archive tail")
	}
	if !errors.Is(err, errArchiveWrite) {
		t.Errorf("failure not named errArchiveWrite: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("underlying ENOSPC not preserved: %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "PENDING.json")); !os.IsNotExist(statErr) {
		t.Errorf("failed flush left a pending file (stat: %v)", statErr)
	}
}
