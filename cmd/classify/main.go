// Command classify runs the full Fig 6 pipeline over a PCAP capture: it
// detects cloud-gaming streaming flows, classifies the game title from the
// launch window, tracks player activity stages, infers the gameplay
// activity pattern, and reports objective vs effective QoE per flow.
//
// Analysis runs on the sharded multi-core engine: flows are hash-partitioned
// across -shards worker pipelines (default: all cores). The reader hands
// raw frames to an engine producer, which peeks only the five-tuple and
// ships the bytes to the owning shard over a lock-free ring, so decode and
// analysis both run on the shard cores and the reader does nothing but
// read. Frames that fail to decode are counted (and reported at end of
// run), not analyzed.
//
// Models are trained on startup from the built-in traffic substrate with
// -train-seed (or loaded with -title-model if a trained forest was exported
// by the trainer example).
//
// With -flow-ttl, the engine runs in streaming mode: flows idle past the
// TTL (in capture time) are finalized and printed as the replay reaches
// their expiry, the way a long-running ISP monitor emits them, and memory
// stays bounded by the number of concurrently active flows instead of the
// total flow count.
//
// With -rollup, every report also feeds a per-subscriber sliding window
// (session counts, per-title share, stage minutes, objective-vs-effective
// QoE, throughput/QoE-proxy percentiles), printed as an operator dashboard
// at end of run. The window runs sharded (-rollup-shards, default matching
// the engine's shard count): reports reach it through the engine's
// batched emitter drain, shard-local rollups aggregate with zero shared
// state, and the printed dashboard and checkpoint are the merged view —
// byte-identical to an unsharded run. -checkpoint makes the window
// durable: the rollup is
// restored from the file when it exists (a restarted monitor resumes its
// aggregations, unsharded — a checkpoint cannot be re-partitioned) and
// atomically rewritten at end of run. A checkpoint
// carries its own window geometry; if -rollup asks for a different one,
// resuming would silently re-bucket history wrong, so classify refuses
// (non-zero exit) unless -rollup-force explicitly accepts the checkpoint's
// geometry. Multiple taps' checkpoints merge into one fleet view with the
// rollupmerge command.
//
// At end of run classify also prints the report-path counters — reports
// emitted and recycled, and the emitter queue depth — the observability
// surface of the engine's lock-free emission path.
//
// The usage line below is usageLine in main.go — flag.Usage and this
// comment share it as the single source of truth; keep them in sync with
// gofmt-visible adjacency rather than by hand-maintained duplicates.
//
// Usage:
//
//	classify [-title-model FILE] [-train-seed N] [-lag MS] [-loss FRAC] [-shards N] [-flow-ttl DUR] [-rollup DUR] [-rollup-shards N] [-checkpoint FILE] [-rollup-force] capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"gamelens"
	"gamelens/internal/pcapio"
	"gamelens/internal/titleclass"
	"gamelens/internal/trace"
)

// usageLine is the one authoritative usage string: flag.Usage prints it,
// and the package comment's Usage section quotes it. A flag added here must
// be added to the flag set below (and vice versa) or the mismatch is
// visible in -h output next to PrintDefaults.
const usageLine = "usage: classify [-title-model FILE] [-train-seed N] [-lag MS] [-loss FRAC] [-shards N] [-flow-ttl DUR] [-rollup DUR] [-rollup-shards N] [-checkpoint FILE] [-rollup-force] capture.pcap"

func main() {
	log.SetFlags(0)
	log.SetPrefix("classify: ")
	modelPath := flag.String("title-model", "", "JSON forest exported by the trainer example")
	lagMs := flag.Float64("lag", 8, "measured path one-way lag in ms (for QoE grading)")
	loss := flag.Float64("loss", 0, "measured path loss rate (for QoE grading)")
	trainSeed := flag.Int64("train-seed", 42, "seed for built-in model training")
	shards := flag.Int("shards", 0, "analysis worker shards (0 = all cores)")
	flowTTL := flag.Duration("flow-ttl", 0, "evict flows idle this long in capture time and print their reports as they expire (0 = report everything at the end)")
	rollupWin := flag.Duration("rollup", 0, "maintain per-subscriber sliding-window aggregates over this window of capture time and print the dashboard at the end (0 = off unless -checkpoint is set, then 1h)")
	rollupShards := flag.Int("rollup-shards", 0, "shard-local rollup fan-out (0 = match the engine's shard count; forced to 1 when resuming a checkpoint)")
	checkpoint := flag.String("checkpoint", "", "rollup checkpoint file: restored at startup when present, atomically rewritten at end of run")
	rollupForce := flag.Bool("rollup-force", false, "resume from a checkpoint whose window geometry conflicts with -rollup (the checkpoint's geometry wins)")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), usageLine)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("training models (seed %d)...", *trainSeed)
	models, err := gamelens.TrainModels(*trainSeed, gamelens.TrainOptions{SessionsPerTitle: 6, SessionLength: 20 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		title, err := gamelens.LoadTitleModel(f, titleclass.Config{})
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *modelPath, err)
		}
		models.Title = title
		log.Printf("loaded title model from %s", *modelPath)
	}

	// The per-subscriber rollup window, sharded to match the engine unless
	// resumed from a checkpoint (which cannot be re-partitioned).
	var ru *gamelens.ShardedRollup
	if *rollupWin > 0 || *checkpoint != "" {
		nShards := *rollupShards
		if nShards <= 0 {
			if nShards = *shards; nShards <= 0 {
				nShards = runtime.GOMAXPROCS(0)
			}
		}
		resolved, resumed, err := resolveRollup(*checkpoint, *rollupWin, nShards, *rollupForce)
		if err != nil {
			log.Fatal(err)
		}
		ru = resolved
		if resumed {
			st := ru.Stats()
			log.Printf("resumed rollup from %s (%d subscribers, %d sessions ingested, clock %v)",
				*checkpoint, st.Subscribers, st.Ingested, ru.Clock().Format(time.RFC3339))
		}
	}

	cfg := gamelens.EngineConfig{
		Shards: *shards,
		Pipeline: gamelens.PipelineConfig{
			QoSLag:  time.Duration(*lagMs * float64(time.Millisecond)),
			QoSLoss: *loss,
			FlowTTL: *flowTTL,
		},
	}
	// The rollup always rides the emitter's batched drain: one lock
	// acquisition per drained shard batch instead of one per report.
	if ru != nil {
		cfg.BatchSink = ru.BatchSink()
	}
	streaming := *flowTTL > 0
	if streaming {
		// In streaming mode every report — evicted mid-replay or finalized
		// by Finish — prints through the sink, in emission order; the
		// end-of-run loop below is skipped. StreamOnly keeps the engine
		// from also retaining each report for Finish (spent reports are
		// recycled to the shard pipelines instead), so memory really is
		// bounded by concurrently active flows.
		cfg.Sink = printReport
		cfg.StreamOnly = true
	}
	eng := gamelens.NewEngine(cfg, models)

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	r, err := pcapio.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}
	// One reader goroutine, one producer handle: frames go to their shard
	// raw, and the shard worker decodes them.
	p := eng.Producer()
	frames := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("frame %d: %v", frames, err)
		}
		frames++
		p.HandleFrame(rec.Timestamp, rec.Data)
	}
	p.Close()

	reports := eng.Finish()
	stats := eng.Stats()
	log.Printf("processed %d frames on %d shards (%d gaming flows, %d evicted by TTL, %d undecodable)",
		frames, stats.Shards, stats.Flows(), stats.EvictedFlows, stats.DecodeErrors)
	log.Printf("report path: %d emitted, %d recycled, emitter queue depth %d",
		stats.EmittedReports, stats.RecycledReports, stats.ReportBacklog)
	if stats.EmittedReports == 0 {
		fmt.Println("no cloud-gaming streaming flows detected")
	} else if !streaming {
		for _, rep := range reports {
			printReport(rep)
		}
	}
	if ru != nil {
		// Merge the shard-local windows once; the dashboard and the
		// checkpoint both come off the merged view, byte-identical to what
		// an unsharded run would have produced.
		merged, err := ru.Merged()
		if err != nil {
			log.Fatalf("merging rollup shards: %v", err)
		}
		printRollup(merged, ru.NumShards())
		if *checkpoint != "" {
			if err := merged.SaveFile(*checkpoint); err != nil {
				log.Fatalf("checkpointing rollup: %v", err)
			}
			log.Printf("rollup checkpointed to %s", *checkpoint)
		}
	}
}

// resolveRollup builds the monitor's rollup window: restored from the
// checkpoint when path names an existing file (wrapped as a single-shard
// front-end — a checkpoint cannot be re-partitioned), fresh and sharded
// across shards otherwise.
// A checkpoint carries its own window geometry (span and bucket count);
// resuming it under a conflicting -rollup would silently re-bucket the
// restored history wrong, so a mismatch between the checkpoint's geometry
// and what -rollup would configure is an error unless force (the
// -rollup-force flag) explicitly accepts the checkpoint's geometry. The
// resumed result reports whether a checkpoint was restored.
func resolveRollup(path string, window time.Duration, shards int, force bool) (ru *gamelens.ShardedRollup, resumed bool, err error) {
	if path != "" {
		restored, err := gamelens.LoadRollup(path)
		switch {
		case err == nil:
			if window > 0 {
				want := gamelens.NewRollup(gamelens.RollupConfig{Window: window}).Config()
				if got := restored.Config(); got != want {
					if !force {
						return nil, false, fmt.Errorf(
							"checkpoint %s holds a %v window in %d buckets but -rollup %v asks for %v in %d: resuming would re-bucket history wrong; pass -rollup-force to keep the checkpoint's geometry, or delete the checkpoint to start over",
							path, got.Window, got.Buckets, window, want.Window, want.Buckets)
					}
					log.Printf("warning: -rollup %v overridden by -rollup-force; keeping checkpoint geometry %v/%d buckets",
						window, got.Window, got.Buckets)
				}
			}
			if shards > 1 {
				log.Printf("resuming from a checkpoint: rollup runs unsharded (-rollup-shards %d ignored)", shards)
			}
			return gamelens.ShardedRollupFrom(restored), true, nil
		case !os.IsNotExist(err):
			return nil, false, fmt.Errorf("restoring rollup: %w", err)
		}
	}
	return gamelens.NewShardedRollup(shards, gamelens.RollupConfig{Window: window}), false, nil
}

// printReport renders one session report; in streaming mode it is (part of)
// the engine sink (the engine serializes calls, so plain printing is safe).
func printReport(rep *gamelens.SessionReport) {
	fmt.Println(rep)
	fmt.Printf("  stage minutes: active %.1f, passive %.1f, idle %.1f\n",
		rep.StageMinutes[trace.StageActive], rep.StageMinutes[trace.StagePassive],
		rep.StageMinutes[trace.StageIdle])
}

// printRollup renders the per-subscriber dashboard for the merged window.
func printRollup(ru *gamelens.Rollup, shards int) {
	aggs := ru.Subscribers()
	fmt.Printf("\nper-subscriber window (clock %v, %d subscribers, %d rollup shards):\n",
		ru.Clock().Format(time.RFC3339), len(aggs), shards)
	for _, a := range aggs {
		w := a.Window
		mbps := w.ThroughputPercentiles()
		fmt.Printf("  %-15v %3d sessions (%d evicted)  active %5.1fm passive %5.1fm idle %5.1fm  %5.1f Mbps (p50/p90/p99 %.1f/%.1f/%.1f)  QoE good obj %3.0f%% eff %3.0f%% proxy p50 %.2f\n",
			a.Subscriber, w.Sessions, w.Evicted,
			w.StageMinutes[trace.StageActive], w.StageMinutes[trace.StagePassive],
			w.StageMinutes[trace.StageIdle], w.MeanDownMbps(),
			mbps.P50, mbps.P90, mbps.P99,
			w.GoodShare(false)*100, w.GoodShare(true)*100,
			w.QoEProxyQuantile(0.5))
	}
}
