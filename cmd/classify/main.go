// Command classify runs the full Fig 6 pipeline over a PCAP capture: it
// detects cloud-gaming streaming flows, classifies the game title from the
// launch window, tracks player activity stages, infers the gameplay
// activity pattern, and reports objective vs effective QoE per flow.
//
// Analysis runs on the sharded multi-core engine: flows are hash-partitioned
// across -shards worker pipelines (default: all cores), so large captures
// with many concurrent flows decode on one core and analyze on the rest.
//
// Models are trained on startup from the built-in traffic substrate (or
// loaded with -title-model if a trained forest was exported by the trainer
// example).
//
// With -flow-ttl, the engine runs in streaming mode: flows idle past the
// TTL (in capture time) are finalized and printed as the replay reaches
// their expiry, the way a long-running ISP monitor emits them, and memory
// stays bounded by the number of concurrently active flows instead of the
// total flow count.
//
// Usage:
//
//	classify [-title-model FILE] [-lag MS] [-loss FRAC] [-shards N] [-flow-ttl DUR] capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"gamelens"
	"gamelens/internal/packet"
	"gamelens/internal/pcapio"
	"gamelens/internal/titleclass"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("classify: ")
	modelPath := flag.String("title-model", "", "JSON forest exported by the trainer example")
	lagMs := flag.Float64("lag", 8, "measured path one-way lag in ms (for QoE grading)")
	loss := flag.Float64("loss", 0, "measured path loss rate (for QoE grading)")
	trainSeed := flag.Int64("train-seed", 42, "seed for built-in model training")
	shards := flag.Int("shards", 0, "analysis worker shards (0 = all cores)")
	flowTTL := flag.Duration("flow-ttl", 0, "evict flows idle this long in capture time and print their reports as they expire (0 = report everything at the end)")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("training models (seed %d)...", *trainSeed)
	models, err := gamelens.TrainModels(*trainSeed, gamelens.TrainOptions{SessionsPerTitle: 6, SessionLength: 20 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		title, err := gamelens.LoadTitleModel(f, titleclass.Config{})
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *modelPath, err)
		}
		models.Title = title
		log.Printf("loaded title model from %s", *modelPath)
	}

	cfg := gamelens.EngineConfig{
		Shards: *shards,
		Pipeline: gamelens.PipelineConfig{
			QoSLag:  time.Duration(*lagMs * float64(time.Millisecond)),
			QoSLoss: *loss,
			FlowTTL: *flowTTL,
		},
	}
	streaming := *flowTTL > 0
	if streaming {
		// In streaming mode every report — evicted mid-replay or
		// finalized by Finish — prints through the sink, in emission
		// order; the end-of-run loop below is skipped. StreamOnly keeps
		// the engine from also retaining each report for Finish, so
		// memory really is bounded by concurrently active flows.
		cfg.Sink = printReport
		cfg.StreamOnly = true
	}
	eng := gamelens.NewEngine(cfg, models)

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	r, err := pcapio.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}
	var dec packet.Decoded
	frames := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("frame %d: %v", frames, err)
		}
		frames++
		if err := packet.Decode(rec.Data, &dec); err != nil {
			continue
		}
		eng.HandlePacket(rec.Timestamp, &dec, dec.Payload)
	}

	reports := eng.Finish()
	stats := eng.Stats()
	log.Printf("processed %d frames on %d shards (%d gaming flows, %d evicted by TTL)",
		frames, stats.Shards, stats.Flows(), stats.EvictedFlows)
	if stats.EmittedReports == 0 {
		fmt.Println("no cloud-gaming streaming flows detected")
		return
	}
	if streaming {
		return // already printed incrementally by the sink
	}
	for _, rep := range reports {
		printReport(rep)
	}
}

// printReport renders one session report; in streaming mode it is the
// engine sink (the engine serializes calls, so plain printing is safe).
func printReport(rep *gamelens.SessionReport) {
	fmt.Println(rep)
	fmt.Printf("  stage minutes: active %.1f, passive %.1f, idle %.1f\n",
		rep.StageMinutes[2], rep.StageMinutes[3], rep.StageMinutes[1])
}
