// Command classify runs the full Fig 6 pipeline over a PCAP capture: it
// detects cloud-gaming streaming flows, classifies the game title from the
// launch window, tracks player activity stages, infers the gameplay
// activity pattern, and reports objective vs effective QoE per flow.
//
// Analysis runs on the sharded multi-core engine: flows are hash-partitioned
// across -shards worker pipelines (default: all cores), so large captures
// with many concurrent flows decode on one core and analyze on the rest.
//
// Models are trained on startup from the built-in traffic substrate with
// -train-seed (or loaded with -title-model if a trained forest was exported
// by the trainer example).
//
// With -flow-ttl, the engine runs in streaming mode: flows idle past the
// TTL (in capture time) are finalized and printed as the replay reaches
// their expiry, the way a long-running ISP monitor emits them, and memory
// stays bounded by the number of concurrently active flows instead of the
// total flow count.
//
// With -rollup, every report also feeds a per-subscriber sliding window
// (session counts, per-title share, stage minutes, objective-vs-effective
// QoE), printed as an operator dashboard at end of run. -checkpoint makes
// the window durable: the rollup is restored from the file when it exists
// (a restarted monitor resumes its aggregations) and atomically rewritten
// at end of run.
//
// The usage line below is usageLine in main.go — flag.Usage and this
// comment share it as the single source of truth; keep them in sync with
// gofmt-visible adjacency rather than by hand-maintained duplicates.
//
// Usage:
//
//	classify [-title-model FILE] [-train-seed N] [-lag MS] [-loss FRAC] [-shards N] [-flow-ttl DUR] [-rollup DUR] [-checkpoint FILE] capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"gamelens"
	"gamelens/internal/packet"
	"gamelens/internal/pcapio"
	"gamelens/internal/titleclass"
	"gamelens/internal/trace"
)

// usageLine is the one authoritative usage string: flag.Usage prints it,
// and the package comment's Usage section quotes it. A flag added here must
// be added to the flag set below (and vice versa) or the mismatch is
// visible in -h output next to PrintDefaults.
const usageLine = "usage: classify [-title-model FILE] [-train-seed N] [-lag MS] [-loss FRAC] [-shards N] [-flow-ttl DUR] [-rollup DUR] [-checkpoint FILE] capture.pcap"

func main() {
	log.SetFlags(0)
	log.SetPrefix("classify: ")
	modelPath := flag.String("title-model", "", "JSON forest exported by the trainer example")
	lagMs := flag.Float64("lag", 8, "measured path one-way lag in ms (for QoE grading)")
	loss := flag.Float64("loss", 0, "measured path loss rate (for QoE grading)")
	trainSeed := flag.Int64("train-seed", 42, "seed for built-in model training")
	shards := flag.Int("shards", 0, "analysis worker shards (0 = all cores)")
	flowTTL := flag.Duration("flow-ttl", 0, "evict flows idle this long in capture time and print their reports as they expire (0 = report everything at the end)")
	rollupWin := flag.Duration("rollup", 0, "maintain per-subscriber sliding-window aggregates over this window of capture time and print the dashboard at the end (0 = off unless -checkpoint is set, then 1h)")
	checkpoint := flag.String("checkpoint", "", "rollup checkpoint file: restored at startup when present, atomically rewritten at end of run")
	flag.Usage = func() {
		fmt.Fprintln(flag.CommandLine.Output(), usageLine)
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	log.Printf("training models (seed %d)...", *trainSeed)
	models, err := gamelens.TrainModels(*trainSeed, gamelens.TrainOptions{SessionsPerTitle: 6, SessionLength: 20 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		title, err := gamelens.LoadTitleModel(f, titleclass.Config{})
		f.Close()
		if err != nil {
			log.Fatalf("loading %s: %v", *modelPath, err)
		}
		models.Title = title
		log.Printf("loaded title model from %s", *modelPath)
	}

	// The per-subscriber rollup window, possibly resumed from a checkpoint.
	var ru *gamelens.Rollup
	if *rollupWin > 0 || *checkpoint != "" {
		if *checkpoint != "" {
			if restored, err := gamelens.LoadRollup(*checkpoint); err == nil {
				ru = restored
				st := ru.Stats()
				log.Printf("resumed rollup from %s (%d subscribers, %d sessions ingested, clock %v)",
					*checkpoint, st.Subscribers, st.Ingested, ru.Clock().Format(time.RFC3339))
				// A checkpoint carries its own window geometry; resuming
				// keeps it so the aggregations stay comparable. Flag a
				// conflicting -rollup rather than silently ignoring it.
				if *rollupWin > 0 && ru.Config().Window != *rollupWin {
					log.Printf("warning: -rollup %v ignored; checkpoint window is %v (delete %s to change geometry)",
						*rollupWin, ru.Config().Window, *checkpoint)
				}
			} else if !os.IsNotExist(err) {
				log.Fatalf("restoring rollup: %v", err)
			}
		}
		if ru == nil {
			ru = gamelens.NewRollup(gamelens.RollupConfig{Window: *rollupWin})
		}
	}

	cfg := gamelens.EngineConfig{
		Shards: *shards,
		Pipeline: gamelens.PipelineConfig{
			QoSLag:  time.Duration(*lagMs * float64(time.Millisecond)),
			QoSLoss: *loss,
			FlowTTL: *flowTTL,
		},
	}
	streaming := *flowTTL > 0
	switch {
	case streaming && ru != nil:
		rollupSink := ru.Sink()
		cfg.Sink = func(r *gamelens.SessionReport) { printReport(r); rollupSink(r) }
		cfg.StreamOnly = true
	case streaming:
		// In streaming mode every report — evicted mid-replay or finalized
		// by Finish — prints through the sink, in emission order; the
		// end-of-run loop below is skipped. StreamOnly keeps the engine
		// from also retaining each report for Finish, so memory really is
		// bounded by concurrently active flows.
		cfg.Sink = printReport
		cfg.StreamOnly = true
	case ru != nil:
		cfg.Sink = ru.Sink()
	}
	eng := gamelens.NewEngine(cfg, models)

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	r, err := pcapio.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}
	var dec packet.Decoded
	frames := 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("frame %d: %v", frames, err)
		}
		frames++
		if err := packet.Decode(rec.Data, &dec); err != nil {
			continue
		}
		eng.HandlePacket(rec.Timestamp, &dec, dec.Payload)
	}

	reports := eng.Finish()
	stats := eng.Stats()
	log.Printf("processed %d frames on %d shards (%d gaming flows, %d evicted by TTL)",
		frames, stats.Shards, stats.Flows(), stats.EvictedFlows)
	if stats.EmittedReports == 0 {
		fmt.Println("no cloud-gaming streaming flows detected")
	} else if !streaming {
		for _, rep := range reports {
			printReport(rep)
		}
	}
	if ru != nil {
		printRollup(ru)
		if *checkpoint != "" {
			if err := ru.SaveFile(*checkpoint); err != nil {
				log.Fatalf("checkpointing rollup: %v", err)
			}
			log.Printf("rollup checkpointed to %s", *checkpoint)
		}
	}
}

// printReport renders one session report; in streaming mode it is (part of)
// the engine sink (the engine serializes calls, so plain printing is safe).
func printReport(rep *gamelens.SessionReport) {
	fmt.Println(rep)
	fmt.Printf("  stage minutes: active %.1f, passive %.1f, idle %.1f\n",
		rep.StageMinutes[trace.StageActive], rep.StageMinutes[trace.StagePassive],
		rep.StageMinutes[trace.StageIdle])
}

// printRollup renders the per-subscriber dashboard for the current window.
func printRollup(ru *gamelens.Rollup) {
	aggs := ru.Subscribers()
	fmt.Printf("\nper-subscriber window (clock %v, %d subscribers):\n",
		ru.Clock().Format(time.RFC3339), len(aggs))
	for _, a := range aggs {
		w := a.Window
		fmt.Printf("  %-15v %3d sessions (%d evicted)  active %5.1fm passive %5.1fm idle %5.1fm  %5.1f Mbps  QoE good obj %3.0f%% eff %3.0f%%\n",
			a.Subscriber, w.Sessions, w.Evicted,
			w.StageMinutes[trace.StageActive], w.StageMinutes[trace.StagePassive],
			w.StageMinutes[trace.StageIdle], w.MeanDownMbps(),
			w.GoodShare(false)*100, w.GoodShare(true)*100)
	}
}
