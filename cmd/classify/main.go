// Command classify runs the full Fig 6 pipeline over a PCAP capture: it
// detects cloud-gaming streaming flows, classifies the game title from the
// launch window, tracks player activity stages, infers the gameplay
// activity pattern, and reports objective vs effective QoE per flow.
//
// Analysis runs on the sharded multi-core engine: flows are hash-partitioned
// across -shards worker pipelines (default: all cores). The reader hands
// raw frames to an engine producer, which peeks only the five-tuple and
// ships the bytes to the owning shard over a lock-free ring, so decode and
// analysis both run on the shard cores and the reader does nothing but
// read. Frames that fail to decode are counted (and reported at end of
// run), not analyzed.
//
// Models are trained on startup from the built-in traffic substrate with
// -train-seed (or loaded with -title-model if a trained forest was exported
// by the trainer example).
//
// With -flow-ttl, the engine runs in streaming mode: flows idle past the
// TTL (in capture time) are finalized and printed as the replay reaches
// their expiry, the way a long-running ISP monitor emits them, and memory
// stays bounded by the number of concurrently active flows instead of the
// total flow count.
//
// With -rollup, every report also feeds a per-subscriber sliding window
// (session counts, per-title share, stage minutes, objective-vs-effective
// QoE, throughput/QoE-proxy percentiles), printed as an operator dashboard
// at end of run. The window runs sharded (-rollup-shards, default matching
// the engine's shard count): reports reach it through the engine's
// batched emitter drain, shard-local rollups aggregate with zero shared
// state, and the printed dashboard and checkpoint are the merged view —
// byte-identical to an unsharded run.
//
// # Durability
//
// -checkpoint makes the window durable. Startup runs a recovery scan over
// the checkpoint path: the newest valid candidate — the base file or any
// generation-numbered sibling (FILE.gen-N) left by a crashed run — is
// restored (a restarted monitor resumes its aggregations, unsharded — a
// checkpoint cannot be re-partitioned), corrupt candidates are quarantined
// aside as FILE.corrupt-N and logged, and the scan degrades to the
// previous generation instead of crash-looping. At end of run the window
// is atomically rewritten to the base path; if that final write fails
// after bounded retries, classify exits non-zero naming the failure — a
// monitor must not report success while its durable state is stale.
//
// -checkpoint-every N additionally checkpoints mid-run: every N bucket
// rotations of capture time, the emitter writes a generation-numbered
// snapshot (FILE.gen-1, .gen-2, ...) off its drain path, so a crash loses
// at most one checkpoint interval of aggregations. SIGINT/SIGTERM trigger
// a graceful shutdown: the replay stops, in-flight flows finalize, and the
// final checkpoint is written before exit.
//
// A checkpoint carries its own window geometry; if -rollup asks for a
// different one, resuming would silently re-bucket history wrong, so
// classify refuses (non-zero exit) unless -rollup-force explicitly accepts
// the checkpoint's geometry. Multiple taps' checkpoints merge into one
// fleet view with the rollupmerge command.
//
// -archive DIR additionally keeps history beyond the sliding window: every
// report also feeds the tiered historical store, which seals each hour of
// packet time into an immutable partition file under DIR, compacts hours
// into days and days into weeks losslessly (the archive's day partition is
// byte-identical to the merge of its hours), and deletes expired
// partitions under -retain-hour/-retain-day/-retain-week (0 = the
// library's defaults; negative = retain forever) only once their compacted
// successor is durable. The archive advances on the packet clock from the
// same emitter hook as -checkpoint-every, resumes its unsealed tail across
// restarts, quarantines corrupt partitions aside as FILE.corrupt-N, and is
// queried (or folded into fleet checkpoints) with the rollupmerge command.
// An archive's tier geometry is pinned by its own manifest; reopening it
// never needs geometry flags.
//
// At end of run classify also prints the report-path counters — reports
// emitted and recycled, the emitter queue depth, and (when nonzero) the
// supervision counters: sink panics recovered, reports dropped after a
// sink was poisoned, checkpoint generations written and failed.
//
// The usage line below is usageLine in main.go — flag.Usage and this
// comment share it as the single source of truth; keep them in sync with
// gofmt-visible adjacency rather than by hand-maintained duplicates.
//
// Usage:
//
//	classify [-title-model FILE] [-train-seed N] [-lag MS] [-loss FRAC] [-shards N] [-flow-ttl DUR] [-rollup DUR] [-rollup-shards N] [-checkpoint FILE] [-checkpoint-every N] [-rollup-force] [-archive DIR] [-retain-hour DUR] [-retain-day DUR] [-retain-week DUR] capture.pcap
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gamelens"
	"gamelens/internal/pcapio"
	"gamelens/internal/persist"
	"gamelens/internal/rollup"
	"gamelens/internal/titleclass"
	"gamelens/internal/trace"
)

// usageLine is the one authoritative usage string: flag.Usage prints it,
// and the package comment's Usage section quotes it. A flag added here must
// be added to the flag set below (and vice versa) or the mismatch is
// visible in -h output next to PrintDefaults.
const usageLine = "usage: classify [-title-model FILE] [-train-seed N] [-lag MS] [-loss FRAC] [-shards N] [-flow-ttl DUR] [-rollup DUR] [-rollup-shards N] [-checkpoint FILE] [-checkpoint-every N] [-rollup-force] [-archive DIR] [-retain-hour DUR] [-retain-day DUR] [-retain-week DUR] capture.pcap"

// errUsage marks a command-line error: main exits 2 without a further
// message (the flag set already printed one).
var errUsage = errors.New("usage")

// errCheckpointWrite names the final-checkpoint failure: the run analyzed
// everything but could not make the rollup durable, so classify must exit
// non-zero rather than let an operator trust a stale checkpoint.
var errCheckpointWrite = errors.New("classify: final rollup checkpoint failed")

// errArchiveWrite is the archive counterpart: the run's unsealed tail (or a
// due partition) could not be made durable at shutdown.
var errArchiveWrite = errors.New("classify: final archive flush failed")

// ckptFS is the filesystem every checkpoint write and recovery scan goes
// through — a package seam so the fault-injection tests can run the real
// CLI path against injected ENOSPC and torn writes.
var ckptFS persist.FS = persist.OS

// trainModels builds the session classifiers; a package variable so tests
// can substitute a small, fast training corpus.
var trainModels = func(seed int64) (*gamelens.Models, error) {
	return gamelens.TrainModels(seed, gamelens.TrainOptions{SessionsPerTitle: 6, SessionLength: 20 * time.Minute})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("classify: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: args are the command
// line after the program name, stdout receives the report and dashboard
// output (diagnostics go through the log package). It returns errUsage for
// command-line errors and errCheckpointWrite-wrapped errors when the final
// checkpoint could not be written.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	modelPath := fs.String("title-model", "", "JSON forest exported by the trainer example")
	lagMs := fs.Float64("lag", 8, "measured path one-way lag in ms (for QoE grading)")
	loss := fs.Float64("loss", 0, "measured path loss rate (for QoE grading)")
	trainSeed := fs.Int64("train-seed", 42, "seed for built-in model training")
	shards := fs.Int("shards", 0, "analysis worker shards (0 = all cores)")
	flowTTL := fs.Duration("flow-ttl", 0, "evict flows idle this long in capture time and print their reports as they expire (0 = report everything at the end)")
	rollupWin := fs.Duration("rollup", 0, "maintain per-subscriber sliding-window aggregates over this window of capture time and print the dashboard at the end (0 = off unless -checkpoint is set, then 1h)")
	rollupShards := fs.Int("rollup-shards", 0, "shard-local rollup fan-out (0 = match the engine's shard count; forced to 1 when resuming a checkpoint)")
	checkpoint := fs.String("checkpoint", "", "rollup checkpoint file: recovered at startup (newest valid generation; corrupt candidates quarantined), atomically rewritten at end of run")
	ckptEvery := fs.Int("checkpoint-every", 0, "also write a generation-numbered checkpoint every N window-bucket rotations of capture time (0 = final checkpoint only; requires -checkpoint)")
	rollupForce := fs.Bool("rollup-force", false, "resume from a checkpoint whose window geometry conflicts with -rollup (the checkpoint's geometry wins)")
	archiveDir := fs.String("archive", "", "tiered historical archive directory: every report also feeds hour partitions sealed under this directory, compacted losslessly into days and weeks, queryable with rollupmerge")
	retainHour := fs.Duration("retain-hour", 0, "hour-partition retention before compaction-backed deletion (0 = library default, negative = forever; requires -archive)")
	retainDay := fs.Duration("retain-day", 0, "day-partition retention (0 = library default, negative = forever; requires -archive)")
	retainWeek := fs.Duration("retain-week", 0, "week-partition retention (0 = library default, negative = forever; requires -archive)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), usageLine)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return errUsage
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return errUsage
	}
	if *ckptEvery > 0 && *checkpoint == "" {
		return errors.New("-checkpoint-every requires -checkpoint")
	}
	if *archiveDir == "" && (*retainHour != 0 || *retainDay != 0 || *retainWeek != 0) {
		return errors.New("-retain-hour/-retain-day/-retain-week require -archive")
	}

	// A signal interrupts the replay, not the shutdown: the read loop
	// breaks, in-flight flows finalize through Finish, and the final
	// checkpoint still gets written — the graceful-flush path. Installed
	// before training so a signal during the slow startup is not fatal
	// either; it is consumed at the first read-loop iteration.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	log.Printf("training models (seed %d)...", *trainSeed)
	models, err := trainModels(*trainSeed)
	if err != nil {
		return err
	}
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		title, err := gamelens.LoadTitleModel(f, titleclass.Config{})
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %v", *modelPath, err)
		}
		models.Title = title
		log.Printf("loaded title model from %s", *modelPath)
	}

	// The per-subscriber rollup window, sharded to match the engine unless
	// resumed from a checkpoint (which cannot be re-partitioned).
	var ru *gamelens.ShardedRollup
	var recInfo rollup.RecoverInfo
	if *rollupWin > 0 || *checkpoint != "" {
		nShards := *rollupShards
		if nShards <= 0 {
			if nShards = *shards; nShards <= 0 {
				nShards = runtime.GOMAXPROCS(0)
			}
		}
		resolved, info, resumed, err := resolveRollup(*checkpoint, *rollupWin, nShards, *rollupForce)
		if err != nil {
			return err
		}
		ru, recInfo = resolved, info
		for _, q := range info.Quarantined {
			log.Printf("warning: quarantined corrupt checkpoint as %s", q)
		}
		if resumed {
			st := ru.Stats()
			log.Printf("resumed rollup from %s (generation %d; %d subscribers, %d sessions ingested, clock %v)",
				info.Path, info.Generation, st.Subscribers, st.Ingested, ru.Clock().Format(time.RFC3339))
		}
	}

	// The tiered historical archive taps the same report stream as the
	// window; its geometry is pinned by its own on-disk manifest, so a
	// resumed archive needs no flags beyond the directory.
	var arch *gamelens.ArchiveStore
	if *archiveDir != "" {
		a, err := gamelens.OpenArchive(gamelens.ArchiveConfig{
			Dir:    *archiveDir,
			FS:     ckptFS,
			Retain: [3]time.Duration{*retainHour, *retainDay, *retainWeek},
		})
		if err != nil {
			return err
		}
		arch = a
		as := arch.Stats()
		for _, q := range as.Quarantined {
			log.Printf("warning: quarantined corrupt archive file as %s", q)
		}
		log.Printf("archive %s: %d hour / %d day / %d week partitions, %d pending, clock %v",
			*archiveDir, as.Partitions[gamelens.ArchiveTierHour],
			as.Partitions[gamelens.ArchiveTierDay], as.Partitions[gamelens.ArchiveTierWeek],
			as.Pending, arch.Clock().Format(time.RFC3339))
	}

	cfg := gamelens.EngineConfig{
		Shards: *shards,
		Pipeline: gamelens.PipelineConfig{
			QoSLag:  time.Duration(*lagMs * float64(time.Millisecond)),
			QoSLoss: *loss,
			FlowTTL: *flowTTL,
		},
	}
	// The rollup (and the archive) always ride the emitter's batched drain:
	// one lock acquisition per drained shard batch instead of one per report.
	switch {
	case ru != nil && arch != nil:
		ruSink, archSink := ru.BatchSink(), arch.BatchSink()
		cfg.BatchSink = func(reports []*gamelens.SessionReport) {
			ruSink(reports)
			archSink(reports)
		}
	case ru != nil:
		cfg.BatchSink = ru.BatchSink()
	case arch != nil:
		cfg.BatchSink = arch.BatchSink()
	}
	// Periodic durability: a Checkpointer over the live window, ticked by
	// the emitter after each drain, numbered from one past whatever the
	// recovery scan saw on disk so a resumed run never overwrites evidence.
	// The archive seals/compacts from the same hook (Archive), including
	// when periodic checkpoints are off; without any checkpointer the
	// archive ticks the emitter hook directly.
	var cp *rollup.Checkpointer
	if ru != nil && *checkpoint != "" {
		ccfg := rollup.CheckpointerConfig{
			Path:         *checkpoint,
			EveryBuckets: *ckptEvery,
			StartGen:     recInfo.NextGen,
			FS:           ckptFS,
		}
		if arch != nil {
			ccfg.Archive = arch
		}
		cp = rollup.NewCheckpointer(ru, ccfg)
		if *ckptEvery > 0 || arch != nil {
			cfg.Checkpoint = cp.Tick
		}
	} else if arch != nil {
		cfg.Checkpoint = func() (bool, error) { return false, arch.Tick() }
	}
	streaming := *flowTTL > 0
	if streaming {
		// In streaming mode every report — evicted mid-replay or finalized
		// by Finish — prints through the sink, in emission order; the
		// end-of-run loop below is skipped. StreamOnly keeps the engine
		// from also retaining each report for Finish (spent reports are
		// recycled to the shard pipelines instead), so memory really is
		// bounded by concurrently active flows.
		cfg.Sink = func(rep *gamelens.SessionReport) { printReport(stdout, rep) }
		cfg.StreamOnly = true
	}
	eng := gamelens.NewEngine(cfg, models)

	in, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	r, err := pcapio.NewReader(in)
	if err != nil {
		return err
	}

	// One reader goroutine, one producer handle: frames go to their shard
	// raw, and the shard worker decodes them.
	p := eng.Producer()
	frames := 0
readLoop:
	for {
		select {
		case sig := <-sigc:
			log.Printf("received %v: flushing flows and writing the final checkpoint", sig)
			break readLoop
		default:
		}
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("frame %d: %v", frames, err)
		}
		frames++
		p.HandleFrame(rec.Timestamp, rec.Data)
	}
	p.Close()

	reports := eng.Finish()
	stats := eng.Stats()
	log.Printf("processed %d frames on %d shards (%d gaming flows, %d evicted by TTL, %d undecodable)",
		frames, stats.Shards, stats.Flows(), stats.EvictedFlows, stats.DecodeErrors)
	log.Printf("report path: %d emitted, %d recycled, emitter queue depth %d",
		stats.EmittedReports, stats.RecycledReports, stats.ReportBacklog)
	if stats.SinkPanics > 0 || stats.SinkDropped > 0 {
		log.Printf("supervision: recovered %d sink panics, dropped %d reports after poisoning",
			stats.SinkPanics, stats.SinkDropped)
	}
	if stats.CheckpointGenerations > 0 || stats.CheckpointFailures > 0 {
		log.Printf("checkpoints: %d generations written mid-run, %d failures",
			stats.CheckpointGenerations, stats.CheckpointFailures)
	}
	if stats.EmittedReports == 0 {
		fmt.Fprintln(stdout, "no cloud-gaming streaming flows detected")
	} else if !streaming {
		for _, rep := range reports {
			printReport(stdout, rep)
		}
	}
	if ru != nil {
		// Merge the shard-local windows once; the dashboard and the
		// checkpoint both come off the merged view, byte-identical to what
		// an unsharded run would have produced.
		merged, err := ru.Merged()
		if err != nil {
			return fmt.Errorf("merging rollup shards: %v", err)
		}
		printRollup(stdout, merged, ru.NumShards())
		if cp != nil {
			if err := cp.Final(); err != nil {
				return fmt.Errorf("%w: %w", errCheckpointWrite, err)
			}
			log.Printf("rollup checkpointed to %s", *checkpoint)
		}
	}
	if arch != nil {
		// With a checkpointer, cp.Final above already flushed the archive
		// (the Archive hook forwards); without one, flush it here.
		if cp == nil {
			if err := arch.Final(); err != nil {
				return fmt.Errorf("%w: %w", errArchiveWrite, err)
			}
		}
		as := arch.Stats()
		log.Printf("archive %s: %d entries (%d late), %d sealed, %d compactions, %d expired removed; %d hour / %d day / %d week partitions, %d pending",
			*archiveDir, as.Ingested, as.Late, as.Sealed, as.Compactions, as.Removed,
			as.Partitions[gamelens.ArchiveTierHour], as.Partitions[gamelens.ArchiveTierDay],
			as.Partitions[gamelens.ArchiveTierWeek], as.Pending)
	}
	return nil
}

// resolveRollup builds the monitor's rollup window: recovered from the
// newest valid checkpoint candidate when path names one (wrapped as a
// single-shard front-end — a checkpoint cannot be re-partitioned), fresh
// and sharded across shards otherwise. Corrupt candidates are quarantined
// by the scan (info.Quarantined); if every candidate was corrupt the error
// surfaces rather than silently starting cold over lost data.
// A checkpoint carries its own window geometry (span and bucket count);
// resuming it under a conflicting -rollup would silently re-bucket the
// restored history wrong, so a mismatch between the checkpoint's geometry
// and what -rollup would configure is an error unless force (the
// -rollup-force flag) explicitly accepts the checkpoint's geometry. The
// resumed result reports whether a checkpoint was restored; info carries
// the recovery scan's findings either way (info.NextGen seeds the
// Checkpointer's generation numbering).
func resolveRollup(path string, window time.Duration, shards int, force bool) (ru *gamelens.ShardedRollup, info rollup.RecoverInfo, resumed bool, err error) {
	if path != "" {
		restored, info, err := rollup.Recover(ckptFS, path)
		if err != nil {
			return nil, info, false, fmt.Errorf("recovering rollup: %w", err)
		}
		if restored != nil {
			if window > 0 {
				want := gamelens.NewRollup(gamelens.RollupConfig{Window: window}).Config()
				if got := restored.Config(); got != want {
					if !force {
						return nil, info, false, fmt.Errorf(
							"checkpoint %s holds a %v window in %d buckets but -rollup %v asks for %v in %d: resuming would re-bucket history wrong; pass -rollup-force to keep the checkpoint's geometry, or delete the checkpoint to start over",
							info.Path, got.Window, got.Buckets, window, want.Window, want.Buckets)
					}
					log.Printf("warning: -rollup %v overridden by -rollup-force; keeping checkpoint geometry %v/%d buckets",
						window, got.Window, got.Buckets)
				}
			}
			if shards > 1 {
				log.Printf("resuming from a checkpoint: rollup runs unsharded (-rollup-shards %d ignored)", shards)
			}
			return gamelens.ShardedRollupFrom(restored), info, true, nil
		}
		return gamelens.NewShardedRollup(shards, gamelens.RollupConfig{Window: window}), info, false, nil
	}
	info.NextGen = 1
	return gamelens.NewShardedRollup(shards, gamelens.RollupConfig{Window: window}), info, false, nil
}

// printReport renders one session report; in streaming mode it is (part of)
// the engine sink (the engine serializes calls, so plain printing is safe).
func printReport(w io.Writer, rep *gamelens.SessionReport) {
	fmt.Fprintln(w, rep)
	fmt.Fprintf(w, "  stage minutes: active %.1f, passive %.1f, idle %.1f\n",
		rep.StageMinutes[trace.StageActive], rep.StageMinutes[trace.StagePassive],
		rep.StageMinutes[trace.StageIdle])
}

// printRollup renders the per-subscriber dashboard for the merged window.
func printRollup(w io.Writer, ru *gamelens.Rollup, shards int) {
	aggs := ru.Subscribers()
	fmt.Fprintf(w, "\nper-subscriber window (clock %v, %d subscribers, %d rollup shards):\n",
		ru.Clock().Format(time.RFC3339), len(aggs), shards)
	for _, a := range aggs {
		win := a.Window
		mbps := win.ThroughputPercentiles()
		fmt.Fprintf(w, "  %-15v %3d sessions (%d evicted)  active %5.1fm passive %5.1fm idle %5.1fm  %5.1f Mbps (p50/p90/p99 %.1f/%.1f/%.1f)  QoE good obj %3.0f%% eff %3.0f%% proxy p50 %.2f\n",
			a.Subscriber, win.Sessions, win.Evicted,
			win.StageMinutes[trace.StageActive], win.StageMinutes[trace.StagePassive],
			win.StageMinutes[trace.StageIdle], win.MeanDownMbps(),
			mbps.P50, mbps.P90, mbps.P99,
			win.GoodShare(false)*100, win.GoodShare(true)*100,
			win.QoEProxyQuantile(0.5))
	}
}
