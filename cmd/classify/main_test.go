package main

// Pins the -checkpoint resume geometry contract: a checkpoint whose window
// geometry disagrees with -rollup refuses to resume (main exits non-zero
// through log.Fatal on the returned error) unless -rollup-force explicitly
// accepts the checkpoint's geometry. Before this, classify warned and
// continued — silently re-bucketing the restored history into the wrong
// window.

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gamelens"
)

// checkpointWith writes a rollup checkpoint with the given geometry and one
// ingested session, returning its path.
func checkpointWith(t *testing.T, cfg gamelens.RollupConfig) string {
	t.Helper()
	ru := gamelens.NewRollup(cfg)
	ru.Observe(gamelens.RollupEntry{
		Subscriber: netip.AddrFrom4([4]byte{192, 0, 2, 7}),
		End:        time.Date(2026, 7, 20, 9, 0, 0, 0, time.UTC),
		Title:      "Fortnite",
	})
	path := filepath.Join(t.TempDir(), "rollup.ckpt")
	if err := ru.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestResolveRollupGeometryMismatch(t *testing.T) {
	ckpt := checkpointWith(t, gamelens.RollupConfig{Window: 30 * time.Minute, Buckets: 12})

	// Mismatched -rollup: refused, with the override spelled out.
	if _, _, _, err := resolveRollup(ckpt, time.Hour, 4, false); err == nil {
		t.Fatal("mismatched geometry resumed without -rollup-force")
	} else if !strings.Contains(err.Error(), "-rollup-force") {
		t.Errorf("refusal does not name the override flag: %v", err)
	}

	// -rollup-force: resumes, and the checkpoint's geometry wins.
	ru, info, resumed, err := resolveRollup(ckpt, time.Hour, 4, true)
	if err != nil {
		t.Fatalf("forced resume failed: %v", err)
	}
	if !resumed {
		t.Error("forced resume not reported as resumed")
	}
	if got := ru.Config().Window; got != 30*time.Minute {
		t.Errorf("forced resume window = %v, want the checkpoint's 30m", got)
	}
	// A checkpoint cannot be re-partitioned: resume ignores the shard ask.
	if got := ru.NumShards(); got != 1 {
		t.Errorf("resumed rollup has %d shards, want 1", got)
	}
	// A resumed run's first generation number comes from the recovery scan.
	if info.NextGen != 1 {
		t.Errorf("resume over a bare base checkpoint reports NextGen %d, want 1", info.NextGen)
	}

	// Matching -rollup: resumes without force.
	if _, _, resumed, err := resolveRollup(ckpt, 30*time.Minute, 1, false); err != nil || !resumed {
		t.Errorf("matching geometry refused: resumed=%v err=%v", resumed, err)
	}

	// No -rollup at all: the checkpoint's geometry is simply adopted.
	if ru, _, resumed, err := resolveRollup(ckpt, 0, 1, false); err != nil || !resumed || ru.Config().Window != 30*time.Minute {
		t.Errorf("bare -checkpoint resume broken: resumed=%v err=%v", resumed, err)
	}
}

func TestResolveRollupColdStarts(t *testing.T) {
	// Missing checkpoint file: a cold start with the requested window.
	missing := filepath.Join(t.TempDir(), "missing.ckpt")
	ru, _, resumed, err := resolveRollup(missing, 2*time.Hour, 4, false)
	if err != nil || resumed {
		t.Fatalf("missing checkpoint not a cold start: resumed=%v err=%v", resumed, err)
	}
	if got := ru.Config().Window; got != 2*time.Hour {
		t.Errorf("cold-start window = %v, want 2h", got)
	}
	// A cold start honors the -rollup-shards ask.
	if got := ru.NumShards(); got != 4 {
		t.Errorf("cold-start rollup has %d shards, want 4", got)
	}
	// No checkpoint configured at all.
	if ru, _, resumed, err := resolveRollup("", time.Hour, 2, false); err != nil || resumed || ru == nil {
		t.Errorf("checkpoint-less start broken: resumed=%v err=%v", resumed, err)
	}
	// A corrupt checkpoint is an error, not a silent cold start — and the
	// recovery scan quarantines the damage aside for inspection.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := resolveRollup(bad, time.Hour, 1, false); err == nil {
		t.Error("corrupt checkpoint resumed as if valid")
	}
	if _, err := os.Stat(bad + ".corrupt-0"); err != nil {
		t.Errorf("corrupt checkpoint not quarantined: %v", err)
	}
}

// TestResolveRollupPicksNewestGeneration pins the crash-recovery startup
// path end to end through the CLI's resolver: a crashed run's periodic
// generation beats a stale base checkpoint, and the next generation number
// continues past everything on disk.
func TestResolveRollupPicksNewestGeneration(t *testing.T) {
	cfg := gamelens.RollupConfig{Window: 30 * time.Minute, Buckets: 12}
	dir := t.TempDir()
	base := filepath.Join(dir, "rollup.ckpt")

	mk := func(path string, clock time.Time) {
		ru := gamelens.NewRollup(cfg)
		ru.Observe(gamelens.RollupEntry{
			Subscriber: netip.AddrFrom4([4]byte{192, 0, 2, 7}),
			End:        clock,
			Title:      "Fortnite",
		})
		if err := ru.SaveFile(path); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Date(2026, 7, 20, 9, 0, 0, 0, time.UTC)
	mk(base, t0)                           // stale end-of-previous-run checkpoint
	mk(base+".gen-3", t0.Add(time.Minute)) // newer: the crashed run got further

	ru, info, resumed, err := resolveRollup(base, 30*time.Minute, 1, false)
	if err != nil || !resumed {
		t.Fatalf("recovery resume failed: resumed=%v err=%v", resumed, err)
	}
	if info.Generation != 3 {
		t.Errorf("recovered generation %d, want the newer gen-3", info.Generation)
	}
	if info.NextGen != 4 {
		t.Errorf("NextGen = %d, want 4", info.NextGen)
	}
	if got := ru.Clock(); !got.Equal(t0.Add(time.Minute)) {
		t.Errorf("recovered clock %v, want the generation's newer %v", got, t0.Add(time.Minute))
	}
}
