// Command gndump inspects a PCAP capture: it lists transport flows with
// volume and rate statistics, flags the ones matching the cloud-gaming
// streaming signature, and can dump per-packet records of one flow.
//
// Usage:
//
//	gndump [-flows] [-packets N] capture.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"gamelens/internal/flowdetect"
	"gamelens/internal/packet"
	"gamelens/internal/pcapio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gndump: ")
	showPackets := flag.Int("packets", 0, "dump the first N packets")
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	in, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	r, err := pcapio.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linktype=%d snaplen=%d\n", r.LinkType(), r.SnapLen())

	det := flowdetect.New(flowdetect.Config{})
	var dec packet.Decoded
	frames, decodeErrs := 0, 0
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("frame %d: %v", frames, err)
		}
		if frames < *showPackets {
			if derr := packet.Decode(rec.Data, &dec); derr == nil {
				fmt.Printf("%6d %s %v -> %v payload=%d\n",
					frames, rec.Timestamp.Format("15:04:05.000000"),
					dec.Flow().Src, dec.Flow().Dst, len(dec.Payload))
			}
		}
		frames++
		if err := packet.Decode(rec.Data, &dec); err != nil {
			decodeErrs++
			continue
		}
		det.Observe(rec.Timestamp, &dec, dec.Payload)
	}

	fmt.Printf("%d frames (%d undecodable)\n\n", frames, decodeErrs)
	fmt.Printf("%-55s %-8s %-20s %10s %10s %8s\n", "flow", "state", "platform", "down pkts", "up pkts", "Mbps")
	var flows []*flowdetect.Flow
	for _, f := range det.GamingFlows() {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].DownBytes > flows[j].DownBytes })
	for _, f := range flows {
		fmt.Printf("%-55s %-8s %-20s %10d %10d %8.1f\n",
			f.Key, f.State, f.Platform, f.DownPkts, f.UpPkts, f.DownMbps())
	}
	if len(flows) == 0 {
		fmt.Println("(no gaming flows)")
	}
}
