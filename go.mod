module gamelens

go 1.22
