package gamelens

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// TestShardScaleGate is the `make scalegate` smoke: shards=GOMAXPROCS must
// not be slower than a single shard on the same capture. It guards the
// monotone shard-scaling property BenchmarkEngineShards measures — the
// regression this gate exists for was a mutex-guarded handoff that made
// more shards *slower* (BENCH_5's inverted curve). The gate is
// deliberately loose (0.9× with best-of-three timing) so it only trips on
// a real inversion, never on scheduler noise.
//
// Opt in with SCALEGATE=1: the gate needs wall-clock-meaningful timing and
// a multi-core box, neither of which a plain `go test ./...` run should
// depend on.
func TestShardScaleGate(t *testing.T) {
	if os.Getenv("SCALEGATE") == "" {
		t.Skip("set SCALEGATE=1 (or run `make scalegate`) to run the shard scaling smoke")
	}
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallelism to gate on", procs)
	}
	m := engineModels(t)
	st := engineStream(t)

	// Best of three replays per shard count: the minimum wall time is the
	// least scheduler-disturbed run, the same selection `make bench` uses.
	throughput := func(shards int) float64 {
		best := time.Duration(1<<63 - 1)
		for run := 0; run < 3; run++ {
			eng := NewEngine(EngineConfig{Shards: shards}, m)
			start := time.Now()
			replayParallel(st, eng)
			reports := len(eng.Finish())
			elapsed := time.Since(start)
			if reports != len(st.Flows) {
				t.Fatalf("shards=%d: %d reports, want %d", shards, reports, len(st.Flows))
			}
			if elapsed < best {
				best = elapsed
			}
		}
		return float64(st.Total) / best.Seconds()
	}

	single := throughput(1)
	multi := throughput(procs)
	t.Logf("GOMAXPROCS=%d: 1 shard %.0f pkts/s, %d shards %.0f pkts/s (%.2fx)",
		procs, single, procs, multi, multi/single)
	if multi < 0.9*single {
		t.Fatalf("shard scaling inverted: %d shards run at %.0f pkts/s vs %.0f single-shard (%.2fx, want >= 0.9x)",
			procs, multi, single, multi/single)
	}
}
